//! The event-driven storage-system simulator (paper Fig. 1): request
//! stream → scheduler → per-disk queues → disk state machines → power
//! manager, with full energy and response-time accounting.
//!
//! This is the online/batch counterpart of the analytic
//! [`crate::offline`] evaluator, playing the role OMNeT++ + DiskSim play
//! in the paper's experiments.
//!
//! Arrivals are *pulled* from a [`RequestSource`] one at a time
//! ([`run_system_streamed`]), so the event queue only ever holds
//! in-flight disk events — a multi-GB trace streams through in constant
//! memory. [`run_system`] wraps a `&[Request]` slice as a source for
//! in-memory callers and is the differential oracle for the streaming
//! path (both run the identical loop, so metrics are bit-identical by
//! construction; tests pin it anyway).

use std::collections::HashMap;

use spindown_disk::disk::{Disk, DiskEvent, DiskRequest};
use spindown_disk::mechanics::{DiskGeometry, Mechanics};
use spindown_disk::policy::{AdaptiveThreshold, AlwaysOn, FixedThreshold, IdlePolicy};
use spindown_disk::power::PowerParams;
use spindown_disk::queue::QueueDiscipline;
use spindown_disk::state::DiskPowerState;
use spindown_sim::event::EventQueue;
use spindown_sim::rng::{SimRng, SplitMix64};
use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::{SimDuration, SimTime};

use crate::cost::DiskStatus;
use crate::metrics::{DiskSummary, RunMetrics};
use crate::model::Request;
use crate::saving::SavingModel;
use crate::sched::{LocationProvider, ScheduleMode, Scheduler, SystemView};

/// Which power-management policy every disk runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Never spin down (the normalization baseline). Disks start idle.
    AlwaysOn,
    /// 2CPM with threshold = breakeven time (the paper's configuration).
    /// Disks start in standby (§2.3).
    Breakeven,
    /// 2CPM with an explicit threshold.
    FixedTimeout(SimDuration),
    /// Adaptive threshold (ablation; see
    /// [`spindown_disk::policy::AdaptiveThreshold`]).
    Adaptive,
}

/// Static configuration of a simulated storage system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of disks (the paper uses 180).
    pub disks: u32,
    /// Power model of every disk.
    pub power: PowerParams,
    /// Mechanical model of every disk.
    pub geometry: DiskGeometry,
    /// Power-management policy.
    pub policy: PolicyKind,
    /// Per-disk request-queue discipline (FCFS in the paper).
    pub discipline: QueueDiscipline,
    /// When set, sample the system's total rate-power draw at this
    /// interval into [`RunMetrics::power_timeline`].
    pub power_sample: Option<SimDuration>,
    /// Seed for all stochastic components (mechanics rotation phases).
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            disks: 180,
            power: PowerParams::barracuda(),
            geometry: DiskGeometry::cheetah_15k5(),
            policy: PolicyKind::Breakeven,
            discipline: QueueDiscipline::Fcfs,
            power_sample: None,
            seed: 0,
        }
    }
}

enum Ev {
    BatchTick,
    Sample,
    Disk(u32, DiskEvent),
}

/// Failure surfaced by a [`RequestSource`]: an upstream I/O or parse
/// error, or an out-of-order arrival. Carries a human-readable message
/// (the underlying errors are not `Clone`/`PartialEq`, so the source is
/// rendered at the boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError(pub String);

impl SourceError {
    /// Creates an error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError(message.into())
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SourceError {}

/// A pull-based, fallible stream of arrivals for
/// [`run_system_streamed`].
///
/// Contract: requests must come out in non-decreasing `at` order (the
/// engine verifies incrementally and fails fast), and `index` must be
/// unique among requests simultaneously in flight (it keys completion
/// accounting). Any `Iterator<Item = Result<Request, SourceError>>`
/// is a source via the blanket impl.
pub trait RequestSource {
    /// Pulls the next arrival; `None` means the stream is exhausted.
    fn next_request(&mut self) -> Option<Result<Request, SourceError>>;
}

impl<I> RequestSource for I
where
    I: Iterator<Item = Result<Request, SourceError>>,
{
    fn next_request(&mut self) -> Option<Result<Request, SourceError>> {
        self.next()
    }
}

/// Runs `scheduler` over `requests` (time-sorted) against `placement`,
/// returning the full metrics of the run.
///
/// Convenience wrapper over [`run_system_streamed`] for in-memory
/// request vectors; both paths execute the identical event loop, which
/// makes this the differential-test oracle for streamed ingestion.
///
/// The measurement horizon is `max(last event, last request + saving
/// window)`, so runs under different schedulers are normalized over
/// essentially the same span.
///
/// # Panics
///
/// Panics if `requests` is not sorted by time or a scheduler returns an
/// off-placement disk.
pub fn run_system(
    requests: &[Request],
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> RunMetrics {
    assert!(
        requests.windows(2).all(|w| w[0].at <= w[1].at),
        "requests must be sorted by time"
    );
    let mut source = requests.iter().map(|r| Ok::<Request, SourceError>(*r));
    run_system_streamed(&mut source, placement, scheduler, config)
        .expect("in-memory sorted slices cannot fail")
}

/// Runs `scheduler` over arrivals pulled lazily from `source`.
///
/// The event queue holds only in-flight work (disk pipeline events, one
/// batch tick, one power sample) plus the single look-ahead arrival, so
/// memory stays bounded by disk count and batch width — never by trace
/// length. Arrivals are interleaved with simulator events by time;
/// at equal times the arrival is processed first, matching the
/// pre-scheduled ordering the materialized path historically used
/// (arrivals were enqueued before any other event and the queue is
/// FIFO-stable at ties).
///
/// # Errors
///
/// Returns the first [`SourceError`] the source yields, or an
/// out-of-order error if arrivals regress in time. Work already
/// dispatched is abandoned at that point — the partial metrics are not
/// returned.
///
/// # Panics
///
/// Panics if the scheduler returns an off-placement disk or the
/// placement disagrees with `config.disks`.
pub fn run_system_streamed(
    source: &mut dyn RequestSource,
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> Result<RunMetrics, SourceError> {
    assert_eq!(
        placement.disks(),
        config.disks,
        "placement and system disagree on disk count"
    );

    let mut root_rng = SimRng::seed_from_u64(config.seed ^ 0x5751);
    let initial_state = match config.policy {
        PolicyKind::AlwaysOn => DiskPowerState::Idle,
        _ => DiskPowerState::Standby,
    };
    let mut disks: Vec<Disk> = (0..config.disks)
        .map(|d| {
            let policy: Box<dyn IdlePolicy> = match &config.policy {
                PolicyKind::AlwaysOn => Box::new(AlwaysOn),
                PolicyKind::Breakeven => Box::new(FixedThreshold::breakeven(&config.power)),
                PolicyKind::FixedTimeout(t) => Box::new(FixedThreshold::new(*t)),
                PolicyKind::Adaptive => Box::new(AdaptiveThreshold::new(
                    0.25,
                    1.0,
                    SimDuration::from_secs(1),
                    config.power.breakeven() * 4,
                )),
            };
            Disk::with_discipline(
                config.power.clone(),
                Mechanics::new(config.geometry.clone(), root_rng.fork(d as u64)),
                policy,
                initial_state,
                SimTime::ZERO,
                config.discipline,
            )
        })
        .collect();

    // Only in-flight work lives here: per-disk pipeline events plus at
    // most one batch tick and one power sample — never the trace itself.
    let mut queue: EventQueue<Ev> =
        EventQueue::with_capacity((config.disks as usize).saturating_mul(4) + 8);

    // Single-request look-ahead: the head of the arrival stream.
    let mut pending = pull_next(source, None)?;

    let batch_interval = match scheduler.mode() {
        ScheduleMode::Online => None,
        ScheduleMode::Batch(interval) => {
            if pending.is_some() {
                queue.schedule(SimTime::ZERO + interval, Ev::BatchTick);
            }
            Some(interval)
        }
    };
    if config.power_sample.is_some() && pending.is_some() {
        queue.schedule(SimTime::ZERO, Ev::Sample);
    }

    let mut power_timeline: Vec<(f64, f64)> = Vec::new();
    let mut batch_buffer: Vec<Request> = Vec::new();
    // Arrival time of every dispatched-but-uncompleted request, keyed by
    // request id — replaces the indexed lookup into a materialized slice.
    let mut in_flight: HashMap<u64, SimTime> = HashMap::new();
    let mut arrivals: usize = 0;
    let mut trace_end = SimTime::ZERO;
    let mut response = LatencyHistogram::default();
    let mut requests_per_disk: Vec<u64> = vec![0; config.disks as usize];
    let mut last_event = SimTime::ZERO;
    let mut peak_events = queue.len();
    let mut peak_in_flight: usize = 0;

    // Reusable status snapshot buffer.
    let mut statuses: Vec<DiskStatus> = Vec::with_capacity(config.disks as usize);

    loop {
        // Arrival-first at ties: pre-scheduled arrivals historically held
        // the lowest sequence numbers in the FIFO-stable queue, so an
        // arrival at time T ran before any simulator event at T.
        let take_arrival = match (&pending, queue.peek_time()) {
            (Some(r), Some(t)) => r.at <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_arrival {
            let req = pending.take().expect("arrival branch requires a request");
            pending = pull_next(source, Some(req.at))?;
            let now = req.at;
            last_event = last_event.max(now);
            trace_end = now;
            arrivals += 1;
            if batch_interval.is_some() {
                batch_buffer.push(req);
            } else {
                dispatch(
                    &[req],
                    placement,
                    scheduler,
                    &mut disks,
                    &mut queue,
                    &mut statuses,
                    &mut requests_per_disk,
                    &mut in_flight,
                    now,
                    &config.power,
                );
            }
        } else {
            let ev = queue.pop().expect("non-arrival branch requires an event");
            let now = ev.at;
            last_event = now;
            match ev.payload {
                Ev::BatchTick => {
                    if !batch_buffer.is_empty() {
                        let batch = std::mem::take(&mut batch_buffer);
                        dispatch(
                            &batch,
                            placement,
                            scheduler,
                            &mut disks,
                            &mut queue,
                            &mut statuses,
                            &mut requests_per_disk,
                            &mut in_flight,
                            now,
                            &config.power,
                        );
                    }
                    if pending.is_some() {
                        let interval = batch_interval.expect("tick implies batch mode");
                        queue.schedule(now + interval, Ev::BatchTick);
                    }
                }
                Ev::Sample => {
                    let watts: f64 = disks.iter().map(Disk::power_w).sum();
                    power_timeline.push((now.as_secs_f64(), watts));
                    // Keep sampling while real events remain (the only
                    // pending sample is the one just popped, so a non-empty
                    // queue or an unconsumed arrival means actual work is
                    // still in flight).
                    if !queue.is_empty() || pending.is_some() {
                        let interval = config.power_sample.expect("sampling enabled");
                        queue.schedule(now + interval, Ev::Sample);
                    }
                }
                Ev::Disk(d, event) => {
                    let outcome = disks[d as usize].handle(now, event);
                    if let Some(done) = outcome.completed {
                        let arrival = in_flight
                            .remove(&done.id)
                            .expect("completed request must be in flight");
                        response.record(now.saturating_since(arrival));
                    }
                    for dir in outcome.directives {
                        queue.schedule(now + dir.after, Ev::Disk(d, dir.event));
                    }
                }
            }
        }
        peak_events = peak_events.max(queue.len());
        peak_in_flight = peak_in_flight.max(in_flight.len() + batch_buffer.len());
    }

    // Horizon: cover the post-trace drain window so normalization is
    // comparable across schedulers.
    let model = SavingModel::new(&config.power);
    let horizon = last_event.max(trace_end + model.window());
    let horizon_s = horizon.as_secs_f64();

    let per_disk: Vec<DiskSummary> = disks
        .iter()
        .enumerate()
        .map(|(i, d)| DiskSummary {
            energy_j: d.energy_j(horizon),
            state_fractions: d.meter().state_fractions(horizon),
            spinups: d.meter().spinups(),
            spindowns: d.meter().spindowns(),
            requests: requests_per_disk[i],
        })
        .collect();

    Ok(RunMetrics {
        scheduler: scheduler.name().into(),
        requests: arrivals,
        horizon_s,
        energy_j: per_disk.iter().map(|d| d.energy_j).sum(),
        always_on_j: config.disks as f64 * config.power.idle_w * horizon_s,
        spinups: per_disk.iter().map(|d| d.spinups).sum(),
        spindowns: per_disk.iter().map(|d| d.spindowns).sum(),
        response,
        per_disk,
        power_timeline,
        peak_events,
        peak_in_flight,
    })
}

/// Pulls the next arrival from `source`, enforcing the non-decreasing
/// time contract against the previous arrival.
fn pull_next(
    source: &mut dyn RequestSource,
    prev: Option<SimTime>,
) -> Result<Option<Request>, SourceError> {
    match source.next_request() {
        None => Ok(None),
        Some(Err(e)) => Err(e),
        Some(Ok(r)) => {
            if prev.is_some_and(|p| r.at < p) {
                return Err(SourceError::new(format!(
                    "requests must be sorted by time (request {} at {:?} regressed)",
                    r.index, r.at
                )));
            }
            Ok(Some(r))
        }
    }
}

/// Asks the scheduler to place `batch` and enqueues the results.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    batch: &[Request],
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    disks: &mut [Disk],
    queue: &mut EventQueue<Ev>,
    statuses: &mut Vec<DiskStatus>,
    requests_per_disk: &mut [u64],
    in_flight: &mut HashMap<u64, SimTime>,
    now: SimTime,
    power: &PowerParams,
) {
    statuses.clear();
    statuses.extend(disks.iter().map(|d| DiskStatus {
        state: d.state(),
        last_request_at: d.last_request_at(),
        load: d.load(),
    }));
    let view = SystemView {
        now,
        params: power,
        placement,
        statuses: statuses.as_slice(),
    };
    let choices = scheduler.assign(batch, &view);
    assert_eq!(
        choices.len(),
        batch.len(),
        "scheduler must place every request"
    );
    for (req, disk_id) in batch.iter().zip(choices) {
        assert!(
            placement.locations(req.data).contains(&disk_id),
            "scheduler placed request {} off-placement ({disk_id})",
            req.index
        );
        requests_per_disk[disk_id.index()] += 1;
        let prev = in_flight.insert(req.index as u64, req.at);
        debug_assert!(prev.is_none(), "request id {} already in flight", req.index);
        let lba = lba_of(req.data.0, disk_id.0, disks[disk_id.index()].params());
        let directives = disks[disk_id.index()].enqueue(
            now,
            DiskRequest {
                id: req.index as u64,
                lba,
                size: req.size,
            },
        );
        for dir in directives {
            queue.schedule(now + dir.after, Ev::Disk(disk_id.0, dir.event));
        }
    }
}

/// Deterministic pseudo-LBA of a data item on a disk: a hash of the
/// (data, disk) pair spread over a nominal 300 GB address space. Real
/// placements assign blocks to arbitrary physical locations; a hash
/// reproduces the resulting random seek pattern.
fn lba_of(data: u64, disk: u32, _params: &PowerParams) -> u64 {
    let mut h = SplitMix64::new(data ^ ((disk as u64) << 40) ^ 0x10CA);
    h.next_u64() % 300_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use crate::model::{DataId, DiskId};
    use crate::sched::{
        ExplicitPlacement, HeuristicScheduler, RandomScheduler, StaticScheduler, WscScheduler,
    };

    fn small_config(disks: u32, policy: PolicyKind) -> SystemConfig {
        SystemConfig {
            disks,
            policy,
            seed: 1,
            ..SystemConfig::default()
        }
    }

    fn requests(times_s: &[f64], datas: &[u64]) -> Vec<Request> {
        times_s
            .iter()
            .zip(datas)
            .enumerate()
            .map(|(i, (&t, &d))| Request {
                index: i as u32,
                at: SimTime::from_secs_f64(t),
                data: DataId(d),
                size: 512 * 1024,
            })
            .collect()
    }

    fn two_disk_placement() -> ExplicitPlacement {
        ExplicitPlacement::new(
            vec![vec![DiskId(0), DiskId(1)], vec![DiskId(1), DiskId(0)]],
            2,
        )
    }

    #[test]
    fn completes_all_requests_and_measures_responses() {
        let reqs = requests(&[0.0, 1.0, 2.0, 50.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        assert_eq!(m.requests, 4);
        assert!(m.energy_j > 0.0);
        // First request hits a standby disk: response >= spin-up time.
        assert!(m.response.max() >= 10.0);
    }

    #[test]
    fn always_on_has_no_spindowns_and_fast_responses() {
        let reqs = requests(&[0.0, 30.0, 60.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::AlwaysOn),
        );
        assert_eq!(m.spindowns, 0);
        assert_eq!(m.spinups, 0);
        assert!(m.response.max() < 0.1, "max {}", m.response.max());
        // Energy ≈ always-on baseline.
        assert!((m.normalized_energy() - 1.0).abs() < 0.01);
    }

    #[test]
    fn breakeven_policy_saves_energy_on_sparse_load() {
        // One burst, then silence: the 2CPM disks sleep.
        let reqs = requests(&[0.0, 0.5, 1.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.spindowns >= 1);
        assert!(
            m.normalized_energy() < 0.9,
            "normalized {}",
            m.normalized_energy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let reqs = requests(&[0.0, 0.2, 5.0, 40.0, 41.0], &[0, 1, 0, 1, 0]);
        let placement = two_disk_placement();
        let run = || {
            let mut sched = RandomScheduler::new(3);
            run_system(
                &reqs,
                &placement,
                &mut sched,
                &small_config(2, PolicyKind::Breakeven),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.spinups, b.spinups);
        assert_eq!(a.response.mean(), b.response.mean());
    }

    #[test]
    fn batch_scheduler_batches_and_completes() {
        let reqs = requests(&[0.0, 0.01, 0.02, 0.03], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched =
            WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        // All four requests fit one batch: WSC covers them with ONE disk
        // (both data items live on both disks), so only one disk ever
        // spun up.
        let used: Vec<_> = m.per_disk.iter().filter(|d| d.requests > 0).collect();
        assert_eq!(used.len(), 1, "WSC should consolidate onto one disk");
        // Batch queueing delay: responses include up to 0.1 s of waiting.
        assert!(m.response.mean() >= 0.01);
    }

    #[test]
    fn heuristic_consolidates_on_spinning_disk() {
        // After the first request wakes a disk, subsequent requests for
        // data replicated on both disks should pile onto the awake disk.
        let reqs = requests(&[0.0, 12.0, 14.0, 16.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = HeuristicScheduler::new(CostFunction::energy_only());
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        let used: Vec<_> = m
            .per_disk
            .iter()
            .enumerate()
            .filter(|(_, d)| d.requests > 0)
            .collect();
        assert_eq!(used.len(), 1, "all requests should go to one disk");
        assert_eq!(m.spinups, 1);
    }

    #[test]
    fn empty_request_stream() {
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &[],
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.requests, 0);
        assert_eq!(m.response.count(), 0);
    }

    #[test]
    fn adaptive_policy_runs() {
        let reqs = requests(&[0.0, 1.0, 2.0, 100.0, 101.0], &[0, 0, 0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Adaptive),
        );
        assert_eq!(m.response.count(), 5);
    }

    #[test]
    fn power_timeline_samples_when_enabled() {
        let reqs = requests(&[0.0, 1.0, 60.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::Breakeven);
        config.power_sample = Some(SimDuration::from_secs(5));
        let m = run_system(&reqs, &placement, &mut sched, &config);
        assert!(
            m.power_timeline.len() >= 5,
            "expected several samples, got {}",
            m.power_timeline.len()
        );
        let params = PowerParams::barracuda();
        for &(t, w) in &m.power_timeline {
            assert!(t >= 0.0);
            assert!(
                (0.0..=2.0 * params.active_w).contains(&w),
                "power sample {w} out of range"
            );
        }
        // Samples are time-ordered.
        assert!(m.power_timeline.windows(2).all(|p| p[0].0 <= p[1].0));
        // Early in the run a disk is spinning; the range of sampled power
        // must vary (disks transition between states).
        let max = m.power_timeline.iter().map(|p| p.1).fold(0.0, f64::max);
        let min = m
            .power_timeline
            .iter()
            .map(|p| p.1)
            .fold(f64::MAX, f64::min);
        assert!(max > min, "power should vary over the run");
    }

    #[test]
    fn power_timeline_empty_when_disabled() {
        let reqs = requests(&[0.0], &[0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.power_timeline.is_empty());
    }

    #[test]
    fn state_fractions_cover_horizon() {
        let reqs = requests(&[0.0, 5.0, 90.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "fractions sum {sum}");
        }
    }
}
