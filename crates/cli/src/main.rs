//! `spindown-cli` binary entry point.

// With `--features bench-alloc`, every heap acquisition in the process
// goes through the counting allocator so the bench harness can report
// `allocs_per_solve` (see `spindown_alloctrack`). Off by default: the
// plain `System` allocator serves the production binary.
#[cfg(feature = "bench-alloc")]
#[global_allocator]
static ALLOC: spindown_alloctrack::CountingAlloc = spindown_alloctrack::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = spindown_cli::run(&argv, &mut std::io::stdout());
    std::process::exit(code);
}
