//! Trace record model.
//!
//! A trace is a time-sorted sequence of block-level I/O requests. Following
//! the paper (§4.1), "each unique combination of disk id and block address"
//! in the source trace is one **data item** ([`DataId`]); the storage
//! system's placement manager later decides which simulated disks hold each
//! item's replicas.

use spindown_sim::time::{SimDuration, SimTime};

/// Identifier of one data item (block) in the storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u64);

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read — the only kind the scheduler handles (the paper assumes
    /// writes are diverted by write off-loading, §2.1).
    Read,
    /// Write — retained by the parsers so real traces round-trip; the
    /// experiment layer filters or off-loads them.
    Write,
}

/// One I/O request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Disk access time — "the time a disk receives the request" (paper
    /// Table 1, `t_i`).
    pub at: SimTime,
    /// The data item accessed.
    pub data: DataId,
    /// Transfer size in bytes (the paper's file blocks are normally
    /// 512 KB).
    pub size: u64,
    /// Read or write.
    pub op: OpKind,
}

/// A time-sorted request trace.
///
/// # Examples
///
/// ```
/// use spindown_trace::record::{DataId, OpKind, Trace, TraceRecord};
/// use spindown_sim::time::SimTime;
///
/// let trace = Trace::from_records(vec![
///     TraceRecord { at: SimTime::from_secs(2), data: DataId(1), size: 4096, op: OpKind::Read },
///     TraceRecord { at: SimTime::from_secs(1), data: DataId(2), size: 4096, op: OpKind::Read },
/// ]);
/// assert_eq!(trace.len(), 2);
/// // Records are sorted on construction.
/// assert_eq!(trace.records()[0].data, DataId(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Builds a trace, sorting records by time (stable, so same-instant
    /// records keep their relative order).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.at);
        Trace { records }
    }

    /// The records, ascending by time.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Streams the records as a [`crate::stream::RecordStream`] — the
    /// trivial in-memory backend, and the oracle the lazy pipeline is
    /// tested against.
    pub fn stream(&self) -> crate::stream::TraceStream<'_> {
        crate::stream::TraceStream::new(self)
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time of the first request (`None` if empty).
    pub fn start(&self) -> Option<SimTime> {
        self.records.first().map(|r| r.at)
    }

    /// Time of the last request (`None` if empty).
    pub fn end(&self) -> Option<SimTime> {
        self.records.last().map(|r| r.at)
    }

    /// Span between first and last request.
    pub fn duration(&self) -> SimDuration {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Number of distinct data items touched.
    pub fn unique_data(&self) -> usize {
        let mut ids: Vec<u64> = self.records.iter().map(|r| r.data.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The largest data id + 1 (dense id space size); 0 if empty.
    pub fn data_space(&self) -> u64 {
        self.records.iter().map(|r| r.data.0 + 1).max().unwrap_or(0)
    }

    /// A copy containing only read requests — what the scheduler sees
    /// after write off-loading (paper §2.1).
    pub fn reads_only(&self) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.op == OpKind::Read)
                .collect(),
        }
    }

    /// A copy truncated to the first `n` requests.
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            records: self.records.iter().copied().take(n).collect(),
        }
    }

    /// A copy with all timestamps shifted so the first request is at
    /// `SimTime::ZERO`.
    pub fn rebased(&self) -> Trace {
        let Some(start) = self.start() else {
            return Trace::default();
        };
        Trace {
            records: self
                .records
                .iter()
                .map(|r| TraceRecord {
                    at: SimTime::ZERO + r.at.saturating_since(start),
                    ..*r
                })
                .collect(),
        }
    }

    /// A copy with data ids remapped to a dense `0..unique` range
    /// (ascending by original id). The placement manager indexes per-data
    /// arrays, so dense ids keep memory proportional to *distinct* data.
    pub fn densified(&self) -> Trace {
        let mut ids: Vec<u64> = self.records.iter().map(|r| r.data.0).collect();
        ids.sort_unstable();
        ids.dedup();
        let lookup = |id: u64| ids.binary_search(&id).expect("id present") as u64;
        Trace {
            records: self
                .records
                .iter()
                .map(|r| TraceRecord {
                    data: DataId(lookup(r.data.0)),
                    ..*r
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_s: u64, data: u64, op: OpKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_secs(at_s),
            data: DataId(data),
            size: 512 * 1024,
            op,
        }
    }

    #[test]
    fn sorts_on_construction() {
        let t = Trace::from_records(vec![
            rec(5, 0, OpKind::Read),
            rec(1, 1, OpKind::Read),
            rec(3, 2, OpKind::Read),
        ]);
        let times: Vec<u64> = t.records().iter().map(|r| r.at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.start(), Some(SimTime::from_secs(1)));
        assert_eq!(t.end(), Some(SimTime::from_secs(5)));
        assert_eq!(t.duration(), SimDuration::from_secs(4));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.start(), None);
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.unique_data(), 0);
        assert_eq!(t.data_space(), 0);
        assert!(t.rebased().is_empty());
    }

    #[test]
    fn unique_data_counts_distinct() {
        let t = Trace::from_records(vec![
            rec(1, 7, OpKind::Read),
            rec(2, 7, OpKind::Read),
            rec(3, 9, OpKind::Read),
        ]);
        assert_eq!(t.unique_data(), 2);
        assert_eq!(t.data_space(), 10);
    }

    #[test]
    fn reads_only_filters_writes() {
        let t = Trace::from_records(vec![
            rec(1, 0, OpKind::Read),
            rec(2, 1, OpKind::Write),
            rec(3, 2, OpKind::Read),
        ]);
        let r = t.reads_only();
        assert_eq!(r.len(), 2);
        assert!(r.records().iter().all(|x| x.op == OpKind::Read));
    }

    #[test]
    fn take_truncates() {
        let t = Trace::from_records((0..10).map(|i| rec(i, i, OpKind::Read)).collect());
        assert_eq!(t.take(3).len(), 3);
        assert_eq!(t.take(100).len(), 10);
    }

    #[test]
    fn rebased_starts_at_zero() {
        let t = Trace::from_records(vec![rec(100, 0, OpKind::Read), rec(105, 1, OpKind::Read)]);
        let r = t.rebased();
        assert_eq!(r.start(), Some(SimTime::ZERO));
        assert_eq!(r.end(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn densified_remaps_ids() {
        let t = Trace::from_records(vec![
            rec(1, 1000, OpKind::Read),
            rec(2, 5, OpKind::Read),
            rec(3, 1000, OpKind::Read),
        ]);
        let d = t.densified();
        assert_eq!(d.unique_data(), 2);
        assert_eq!(d.data_space(), 2);
        // Same id maps to same dense id.
        assert_eq!(d.records()[0].data, d.records()[2].data);
        assert_ne!(d.records()[0].data, d.records()[1].data);
    }
}
