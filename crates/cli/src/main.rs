//! `spindown-cli` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = spindown_cli::run(&argv, &mut std::io::stdout());
    std::process::exit(code);
}
