//! Deterministic property checks for the MWIS and set-cover solvers: on
//! pseudo-randomly generated instances (seeded `spindown_sim` RNG, so every
//! run exercises the identical cases), every solver's output must be
//! feasible, and the exact solvers must dominate the heuristics.

use spindown_graph::csr::CsrGraph;
use spindown_graph::graph::{Graph, NodeId};
use spindown_graph::mwis;
use spindown_graph::setcover::{harmonic, SetCoverInstance};
use spindown_sim::rng::SimRng;

/// A random graph: `2..=max_n` nodes, weights in (0, 10], random edges.
fn random_graph(rng: &mut SimRng, max_n: usize) -> Graph {
    random_graph_with_density(rng, max_n, 2)
}

/// A random graph with tunable density: up to `n * edge_factor` edge
/// draws, so `edge_factor` sweeps sparse (1) to near-complete (12 at
/// `max_n` ≈ 40).
fn random_graph_with_density(rng: &mut SimRng, max_n: usize, edge_factor: usize) -> Graph {
    let n = 2 + rng.index(max_n - 1);
    let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
    let mut g = Graph::with_weights(weights);
    for _ in 0..rng.index(n * edge_factor) {
        let u = rng.index(n) as NodeId;
        let v = rng.index(n) as NodeId;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

#[test]
fn gwmin_output_is_independent_and_maximal() {
    let mut rng = SimRng::seed_from_u64(0x6717a1);
    for _ in 0..64 {
        let g = random_graph(&mut rng, 40);
        let is = mwis::gwmin(&g);
        assert!(g.is_independent_set(&is));
        // Maximality: no vertex outside the set is addable.
        let mut inset = vec![false; g.len()];
        for &v in &is {
            inset[v as usize] = true;
        }
        for v in 0..g.len() {
            if inset[v] {
                continue;
            }
            let addable = g
                .neighbors(v as NodeId)
                .iter()
                .all(|&u| !inset[u as usize]);
            assert!(!addable, "vertex {v} was addable");
        }
    }
}

#[test]
fn gwmin2_output_is_independent() {
    let mut rng = SimRng::seed_from_u64(0x6717a2);
    for _ in 0..64 {
        let g = random_graph(&mut rng, 40);
        assert!(g.is_independent_set(&mwis::gwmin2(&g)));
    }
}

#[test]
fn gwmin_satisfies_sakai_bound() {
    let mut rng = SimRng::seed_from_u64(0x6717a3);
    for _ in 0..64 {
        let g = random_graph(&mut rng, 30);
        let is = mwis::gwmin(&g);
        let bound: f64 = (0..g.len())
            .map(|v| g.weight(v as NodeId) / (g.degree(v as NodeId) as f64 + 1.0))
            .sum();
        assert!(g.set_weight_sum(&is) >= bound - 1e-9);
    }
}

#[test]
fn exact_dominates_heuristics() {
    let mut rng = SimRng::seed_from_u64(0x6717a4);
    for _ in 0..64 {
        let g = random_graph(&mut rng, 16);
        let ex = mwis::exact(&g, 16).expect("within limit");
        assert!(g.is_independent_set(&ex));
        let exw = g.set_weight_sum(&ex);
        for is in [mwis::gwmin(&g), mwis::gwmin2(&g)] {
            assert!(
                g.set_weight_sum(&is) <= exw + 1e-9,
                "heuristic beat exact: {} > {}",
                g.set_weight_sum(&is),
                exw
            );
        }
        let ls = mwis::local_search(&g, &mwis::gwmin(&g));
        assert!(g.is_independent_set(&ls));
        assert!(g.set_weight_sum(&ls) <= exw + 1e-9);
    }
}

#[test]
fn local_search_never_worsens() {
    let mut rng = SimRng::seed_from_u64(0x6717a5);
    for _ in 0..64 {
        let g = random_graph(&mut rng, 30);
        let start = mwis::gwmin(&g);
        let improved = mwis::local_search(&g, &start);
        assert!(g.is_independent_set(&improved));
        assert!(g.set_weight_sum(&improved) >= g.set_weight_sum(&start) - 1e-9);
    }
}

#[test]
fn greedy_cover_is_valid_and_bounded() {
    let mut rng = SimRng::seed_from_u64(0x6717a6);
    for _ in 0..64 {
        let universe = 1 + rng.index(11);
        let mut inst = SetCoverInstance::new(universe);
        // Guarantee coverability with singletons.
        for e in 0..universe {
            inst.add_set(1.0, [e as u32]);
        }
        for _ in 0..1 + rng.index(9) {
            let w = rng.next_f64() * 5.0;
            let elems: Vec<u32> = (0..1 + rng.index(5))
                .map(|_| rng.index(12) as u32)
                .collect();
            inst.add_set(w, elems);
        }
        let g = inst.solve_greedy().expect("coverable");
        assert!(inst.is_cover(&g.sets));
        let e = inst.solve_exact(12).expect("coverable");
        assert!(inst.is_cover(&e.sets));
        assert!(
            e.weight <= g.weight + 1e-9,
            "exact {} > greedy {}",
            e.weight,
            g.weight
        );
        assert!(
            g.weight <= harmonic(universe) * e.weight + 1e-9,
            "greedy {} exceeded Hn bound on exact {}",
            g.weight,
            e.weight
        );
    }
}

#[test]
fn uncoverable_instances_return_none() {
    let mut rng = SimRng::seed_from_u64(0x6717a7);
    for _ in 0..64 {
        let universe = 2 + rng.index(8);
        let missing = rng.index(universe);
        let mut inst = SetCoverInstance::new(universe);
        for e in 0..universe {
            if e != missing {
                inst.add_set(1.0, [e as u32]);
            }
        }
        assert!(inst.solve_greedy().is_none());
        assert!(inst.solve_exact(16).is_none());
    }
}

/// The bulk [`GraphBuilder`] must be observationally identical to feeding
/// the same edge sequence — duplicates, reversed duplicates, and
/// self-loops included — through [`Graph::add_edge`]. Neighbor *order*
/// matters, not just the neighbor sets: `gwmin2` and `local_search` are
/// sensitive to adjacency-list order, so the builder guarantees
/// first-occurrence insertion order.
#[test]
fn builder_equivalent_to_incremental_on_random_sequences() {
    use spindown_graph::graph::GraphBuilder;

    let mut rng = SimRng::seed_from_u64(0x6717a8);
    for case in 0..128 {
        let n = 2 + rng.index(40);
        let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();

        // One shared edge sequence with deliberate duplicates (~1/4 of
        // draws repeat an earlier edge, possibly flipped) and self-loops.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for _ in 0..rng.index(n * 4) + 1 {
            let (u, v) = if !edges.is_empty() && rng.index(4) == 0 {
                let (a, b) = edges[rng.index(edges.len())];
                if rng.index(2) == 0 {
                    (a, b)
                } else {
                    (b, a)
                }
            } else {
                (rng.index(n) as NodeId, rng.index(n) as NodeId)
            };
            edges.push((u, v));
        }

        let mut incremental = Graph::with_weights(weights.clone());
        let mut builder = GraphBuilder::with_weights(weights);
        for &(u, v) in &edges {
            incremental.add_edge(u, v);
            builder.add_edge(u, v);
        }
        let bulk = builder.finalize();

        assert_eq!(bulk.len(), incremental.len(), "case {case}: node count");
        assert_eq!(
            bulk.edge_count(),
            incremental.edge_count(),
            "case {case}: edge count"
        );
        for v in 0..n as NodeId {
            assert_eq!(
                bulk.neighbors(v),
                incremental.neighbors(v),
                "case {case}: adjacency order of node {v} diverged"
            );
            assert_eq!(bulk.weight(v), incremental.weight(v));
        }
    }
}

/// The CSR backend must be structurally indistinguishable from the
/// adjacency-list graph it was built from — same node count, edge count,
/// degrees, (sorted) neighbor sets, weights, and `has_edge` answers —
/// across sparse, moderate, and dense instances, and regardless of
/// whether the CSR came from a snapshot or from the builder.
#[test]
fn csr_structure_matches_adjacency_list() {
    use spindown_graph::graph::GraphBuilder;

    let mut rng = SimRng::seed_from_u64(0x6717a9);
    for case in 0..60 {
        let g = random_graph_with_density(&mut rng, 40, [1, 4, 12][case % 3]);
        let n = g.len();
        // Snapshot path and builder path must agree with each other too.
        let snap = CsrGraph::from_graph(&g);
        let mut b = GraphBuilder::with_weights(g.weights().to_vec());
        for v in 0..n as NodeId {
            for &u in g.neighbors(v) {
                if v < u {
                    b.add_edge(v, u);
                }
            }
        }
        let built = b.finalize_csr();
        assert_eq!(snap, built, "case {case}: snapshot vs builder CSR");

        assert_eq!(snap.len(), g.len(), "case {case}: node count");
        assert_eq!(snap.edge_count(), g.edge_count(), "case {case}: edges");
        for v in 0..n as NodeId {
            assert_eq!(snap.weight(v), g.weight(v));
            assert_eq!(snap.degree(v), g.degree(v), "case {case}: degree {v}");
            let mut adj = g.neighbors(v).to_vec();
            adj.sort_unstable();
            assert_eq!(snap.neighbors(v), &adj[..], "case {case}: adjacency {v}");
            for u in 0..n as NodeId {
                assert_eq!(
                    snap.has_edge(v, u),
                    g.has_edge(v, u),
                    "case {case}: has_edge({v}, {u})"
                );
            }
        }
    }
}

/// Every MWIS solver must return the *identical* node set on both
/// storage backends, and the coalesced production cascade must be
/// bit-identical to the eager reference engine on each backend — across
/// sparse-to-dense seeded instances.
#[test]
fn solvers_identical_across_backends_and_engines() {
    let mut rng = SimRng::seed_from_u64(0x6717aa);
    for case in 0..60 {
        let g = random_graph_with_density(&mut rng, 40, [1, 4, 12][case % 3]);
        let c = CsrGraph::from_graph(&g);

        let gw = mwis::gwmin(&g);
        assert_eq!(gw, mwis::gwmin(&c), "case {case}: gwmin backends");
        assert_eq!(gw, mwis::baseline::gwmin(&g), "case {case}: gwmin engines");
        assert_eq!(gw, mwis::baseline::gwmin(&c), "case {case}: gwmin cross");

        let gw2 = mwis::gwmin2(&g);
        assert_eq!(gw2, mwis::gwmin2(&c), "case {case}: gwmin2 backends");
        assert_eq!(gw2, mwis::baseline::gwmin2(&g), "case {case}: gwmin2 engines");
        assert_eq!(gw2, mwis::baseline::gwmin2(&c), "case {case}: gwmin2 cross");

        assert_eq!(
            mwis::local_search(&g, &gw),
            mwis::local_search(&c, &gw),
            "case {case}: local_search backends"
        );
    }
}

/// Exact branch-and-bound is backend-independent as well (kept to small
/// instances; the solver is exponential).
#[test]
fn exact_identical_across_backends() {
    let mut rng = SimRng::seed_from_u64(0x6717ab);
    for case in 0..50 {
        let g = random_graph_with_density(&mut rng, 14, [1, 4, 12][case % 3]);
        let c = CsrGraph::from_graph(&g);
        assert_eq!(
            mwis::exact(&g, 16),
            mwis::exact(&c, 16),
            "case {case}: exact backends"
        );
    }
}
