//! Discrete-event queue.
//!
//! [`EventQueue`] is the heart of the simulation kernel: a priority queue of
//! `(SimTime, payload)` pairs ordered by time, with **stable FIFO ordering
//! for events scheduled at the same instant**. Stability matters for
//! reproducibility: two events at the same timestamp are always delivered in
//! the order they were scheduled, independent of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: delivery time plus an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub payload: T,
}

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and among
        // equal times, the smallest sequence number) is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use spindown_sim::event::EventQueue;
/// use spindown_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    /// Time of the most recently popped event; used to detect scheduling
    /// into the past (a logic error in the caller).
    watermark: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `payload` for delivery at `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the time of the most
    /// recently popped event — scheduling into the simulated past is always
    /// a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        debug_assert!(
            at >= self.watermark,
            "scheduled event at {at:?} before current time {:?}",
            self.watermark
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the internal
    /// watermark to its time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let e = self.heap.pop()?;
        self.watermark = e.at;
        Some(Scheduled {
            at: e.at,
            payload: e.payload,
        })
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Resets the queue to its freshly-constructed state, keeping the heap
    /// allocation: pending events are dropped and both the FIFO tie-break
    /// counter and the watermark return to zero. A cleared queue behaves
    /// exactly like `with_capacity(self.capacity())`, so warm engines can
    /// recycle queues across runs without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.watermark = SimTime::ZERO;
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 9, 3, 7] {
            q.schedule(SimTime::from_secs(s), s);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "a");
        q.schedule(t, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        q.schedule(t, "c");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(4), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_seq_and_watermark_keeping_capacity() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        let t = SimTime::from_secs(9);
        for i in 0..50 {
            q.schedule(t, i);
        }
        q.pop();
        assert_eq!(q.now(), t);
        q.clear();
        // Fully reset: empty, watermark back at zero (scheduling early times
        // is legal again), and the allocation survived.
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.capacity(), cap);
        q.schedule(SimTime::from_secs(1), 100);
        // FIFO counter restarted: a second run's same-time events drain in
        // schedule order, exactly as in a fresh queue.
        q.schedule(SimTime::from_secs(1), 101);
        assert_eq!(q.pop().unwrap().payload, 100);
        assert_eq!(q.pop().unwrap().payload, 101);
        assert_eq!(q.seq, 2);
    }

    #[test]
    fn same_time_as_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0);
        q.pop();
        // Re-scheduling at exactly `now` must be fine (zero-delay events).
        q.schedule(q.now(), 1);
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
    }

    #[test]
    fn large_volume_is_sorted() {
        let mut q = EventQueue::new();
        // Deterministic pseudo-shuffle.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_micros(x % 1_000_000), ());
        }
        let mut prev = SimTime::ZERO;
        while let Some(e) = q.pop() {
            assert!(e.at >= prev);
            prev = e.at;
        }
        let _ = prev + SimDuration::ZERO;
    }
}
