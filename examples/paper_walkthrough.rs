//! Walks through the paper's running example (Figs. 2–4) step by step:
//! the batch toy instance, the offline toy instance, and the MWIS graph
//! construction that recovers the optimal schedule.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use spindown::core::model::Assignment;
use spindown::core::offline::{brute_force_optimal, evaluate_offline};
use spindown::core::paper_example as paper;
use spindown::core::sched::{LocationProvider, MwisPlanner, MwisSolver};

fn energy(requests: &[spindown::core::model::Request], schedule: &Assignment) -> f64 {
    evaluate_offline(requests, schedule, 4, &paper::params(), None, None).energy_j
}

fn main() {
    println!("The paper's running example: 6 requests, 4 disks, TB = 5 s, unit power.\n");
    println!("placement (b = block, d = disk):");
    let placement = paper::placement();
    for b in 0..6u64 {
        let locs: Vec<String> = placement
            .locations(spindown::core::model::DataId(b))
            .iter()
            .map(|d| format!("d{}", d.0 + 1))
            .collect();
        println!("  b{} -> {}", b + 1, locs.join(", "));
    }

    // --- Fig. 2: the batch case (all requests at t = 0). ---
    println!("\n== Fig. 2: batch scheduling (all requests concurrent) ==");
    let batch = paper::batch_requests();
    println!(
        "  schedule A (3 disks): energy {}",
        energy(&batch, &paper::schedule_a())
    );
    println!(
        "  schedule B (2 disks): energy {}",
        energy(&batch, &paper::schedule_b())
    );
    println!("  always-on           : energy 20");
    println!("  -> B is batch-optimal: minimum number of disks covers all requests.");

    // --- Fig. 3: the offline case (requests spread over time). ---
    println!("\n== Fig. 3: offline scheduling (arrivals at t = 0,1,3,5,12,13) ==");
    let offline = paper::offline_requests();
    println!(
        "  schedule B: energy {}",
        energy(&offline, &paper::schedule_b())
    );
    println!(
        "  schedule C: energy {}",
        energy(&offline, &paper::schedule_c())
    );
    println!("  -> B is no longer optimal: offline cost depends on arrival times too.");

    // --- Fig. 4: the MWIS reduction. ---
    println!("\n== Fig. 4: the MWIS scheduling algorithm ==");
    let planner = MwisPlanner {
        params: paper::params(),
        solver: MwisSolver::Exact { node_limit: 64 },
        max_successors: 8,
    };
    let cg = planner.build_graph(&offline, &placement);
    println!(
        "  step 1+2: {} candidate savings X(i,j,k), {} conflict edges:",
        cg.graph.len(),
        cg.graph.edge_count()
    );
    for (n, &(i, j, k)) in cg.nodes.iter().enumerate() {
        println!(
            "    X(r{},r{},d{})  weight {}  degree {}",
            i + 1,
            j + 1,
            k.0 + 1,
            cg.graph.weight(n as u32),
            cg.graph.degree(n as u32)
        );
    }
    let sel = planner.solve(&cg);
    let total: f64 = sel.iter().map(|&v| cg.graph.weight(v)).sum();
    println!("  step 3: maximum-weight independent set, total saving {total}:");
    for &v in &sel {
        let (i, j, k) = cg.nodes[v as usize];
        println!("    X(r{},r{},d{})", i + 1, j + 1, k.0 + 1);
    }
    let (assignment, _) = planner.plan(&offline, &placement);
    println!("  step 4: derived assignment:");
    for (r, d) in assignment.disks.iter().enumerate() {
        println!("    r{} -> d{}", r + 1, d.0 + 1);
    }
    let mwis_energy = energy(&offline, &assignment);
    println!("  energy of derived schedule: {mwis_energy}");

    // Cross-check against exhaustive search.
    let (_, optimal) =
        brute_force_optimal(&offline, &placement, &paper::params(), 1_000_000).expect("small");
    println!(
        "\nbrute-force optimum over all {} schedules: {}",
        2 * 3 * 2 * 2 * 2,
        optimal
    );
    assert_eq!(
        mwis_energy, optimal,
        "Theorem 1: the MWIS schedule is optimal"
    );
    println!("Theorem 1 verified: the MWIS-derived schedule is exactly optimal.");
}
