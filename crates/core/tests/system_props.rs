//! Property tests for the end-to-end system simulator: arbitrary small
//! workloads through every scheduler must satisfy conservation, bounding
//! and determinism invariants.

use proptest::prelude::*;

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{run_experiment, ExperimentSpec, SchedulerKind};
use spindown_core::model::{DataId, Request};
use spindown_core::placement::PlacementConfig;
use spindown_core::sched::MwisSolver;
use spindown_core::system::SystemConfig;
use spindown_sim::time::{SimDuration, SimTime};

fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec((0u64..20_000u64, 0u64..60), 1..80).prop_map(|specs| {
        let mut t = SimTime::ZERO;
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (gap_ms, data))| {
                t += SimDuration::from_millis(gap_ms);
                Request {
                    index: i as u32,
                    at: t,
                    data: DataId(data),
                    size: 256 * 1024,
                }
            })
            .collect()
    })
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(vec![
        SchedulerKind::Random,
        SchedulerKind::Static,
        SchedulerKind::Heuristic(CostFunction::default()),
        SchedulerKind::Heuristic(CostFunction::energy_only()),
        SchedulerKind::Wsc {
            cost: CostFunction::default(),
            interval: SimDuration::from_millis(100),
        },
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMin,
            max_successors: 3,
        },
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMinRefined { passes: 2 },
            max_successors: 3,
        },
    ])
}

fn spec(scheduler: SchedulerKind, replication: u32, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        placement: PlacementConfig {
            disks: 10,
            replication,
            zipf_z: 1.0,
        },
        scheduler,
        system: SystemConfig {
            disks: 10,
            ..SystemConfig::default()
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request completes; energy is positive and never
    /// meaningfully exceeds the always-on ceiling plus transition lumps.
    #[test]
    fn conservation_and_bounds(
        requests in arb_requests(),
        scheduler in arb_scheduler(),
        rf in 1u32..=4,
        seed in 0u64..50,
    ) {
        let m = run_experiment(&requests, &spec(scheduler, rf, seed));
        prop_assert_eq!(m.requests, requests.len());
        prop_assert_eq!(m.response.count(), requests.len() as u64);
        prop_assert!(m.energy_j > 0.0);
        let ceiling = m.always_on_j
            + (m.spinups + m.spindowns) as f64 * 148.0
            + requests.len() as f64 * 0.1 * 12.8; // service at active power
        prop_assert!(
            m.energy_j <= ceiling,
            "energy {} above ceiling {}",
            m.energy_j,
            ceiling
        );
        // Per-disk fractions always partition the horizon.
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
        // Per-disk request counts add up.
        let assigned: u64 = m.per_disk.iter().map(|d| d.requests).sum();
        prop_assert_eq!(assigned, requests.len() as u64);
    }

    /// Determinism: identical spec, identical metrics.
    #[test]
    fn determinism(
        requests in arb_requests(),
        scheduler in arb_scheduler(),
        seed in 0u64..50,
    ) {
        let a = run_experiment(&requests, &spec(scheduler.clone(), 3, seed));
        let b = run_experiment(&requests, &spec(scheduler, 3, seed));
        prop_assert_eq!(a.energy_j, b.energy_j);
        prop_assert_eq!(a.spinups, b.spinups);
        prop_assert_eq!(a.spindowns, b.spindowns);
        prop_assert_eq!(a.response_mean_s(), b.response_mean_s());
    }

    /// Responses are causal and bounded: no response below the minimum
    /// service time scale or above (spin-up + full-queue drain) bounds.
    #[test]
    fn response_times_are_sane(
        requests in arb_requests(),
        scheduler in arb_scheduler(),
    ) {
        let m = run_experiment(&requests, &spec(scheduler, 3, 1));
        // Max possible: every request on one disk behind a spin-down/up
        // bounce plus every service.
        let bound = 11.5 + 10.0 + requests.len() as f64 * 0.1 + 0.2;
        prop_assert!(
            m.response.max() <= bound,
            "max response {} above bound {}",
            m.response.max(),
            bound
        );
    }
}
