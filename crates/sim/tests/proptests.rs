//! Property tests for the simulation kernel: the event queue against a
//! sorted reference, histogram quantiles against exact order statistics,
//! and statistics accumulators against direct computation.

use proptest::prelude::*;

use spindown_sim::event::EventQueue;
use spindown_sim::rng::{AliasTable, SimRng, Zipf};
use spindown_sim::stats::{LatencyHistogram, OnlineStats};
use spindown_sim::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Popping the queue yields exactly a stable sort of the scheduled
    /// events (by time, ties by insertion order).
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_micros(), e.payload));
        }
        prop_assert_eq!(got, expect);
    }

    /// Histogram quantiles bracket the exact order statistics within one
    /// bucket's relative width.
    #[test]
    fn histogram_quantiles_bracket_exact(
        values in prop::collection::vec(1e-5f64..100.0, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::default();
        for &v in &values {
            h.record_secs(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx];
        let approx = h.quantile(q);
        // Bucket growth is 1.25: the reported (upper-edge) quantile may
        // exceed the exact value by one bucket and never undershoots by
        // more than one bucket.
        prop_assert!(approx >= exact / 1.26, "approx {approx} far below exact {exact}");
        prop_assert!(approx <= exact * 1.26, "approx {approx} far above exact {exact}");
    }

    /// The histogram's mean is exact (it tracks raw values).
    #[test]
    fn histogram_mean_is_exact(values in prop::collection::vec(0.0f64..50.0, 1..200)) {
        let mut h = LatencyHistogram::default();
        for &v in &values {
            h.record(SimDuration::from_secs_f64(v));
        }
        // SimDuration rounds to µs, so compare against the rounded values.
        let rounded: Vec<f64> = values
            .iter()
            .map(|&v| SimDuration::from_secs_f64(v).as_secs_f64())
            .collect();
        let exact = rounded.iter().sum::<f64>() / rounded.len() as f64;
        prop_assert!((h.mean() - exact).abs() < 1e-9);
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.population_variance() - var).abs() < 1e-4);
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    /// Merged accumulators equal the sequential result for any split.
    #[test]
    fn online_stats_merge_any_split(
        values in prop::collection::vec(-1e3f64..1e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((values.len() as f64 * split_frac) as usize).min(values.len());
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        for &v in &values[..split] { a.push(v); }
        for &v in &values[split..] { b.push(v); }
        a.merge(&b);
        let mut all = OnlineStats::new();
        for &v in &values { all.push(v); }
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.population_variance() - all.population_variance()).abs() < 1e-4);
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
    }

    /// Zipf samples always land in range; the PMF is a distribution.
    #[test]
    fn zipf_is_well_formed(n in 1usize..500, z in 0.0f64..2.0, seed in 0u64..1000) {
        let zipf = Zipf::new(n, z).expect("valid parameters");
        let total: f64 = (1..=n).map(|r| zipf.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let r = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    /// Alias-table samples land in range for any positive weight vector.
    #[test]
    fn alias_table_is_well_formed(
        weights in prop::collection::vec(0.001f64..100.0, 1..100),
        seed in 0u64..1000,
    ) {
        let table = AliasTable::new(&weights).expect("positive weights");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(table.sample(&mut rng) < weights.len());
        }
    }

    /// Forked RNG streams never coincide with the parent over a window.
    #[test]
    fn forked_streams_diverge(seed in 0u64..10_000) {
        let mut parent = SimRng::seed_from_u64(seed);
        let mut child = parent.fork(1);
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        prop_assert_ne!(p, c);
    }
}
