//! End-to-end simulation throughput: full system runs (the unit of work
//! behind every figure cell) and the analytic offline evaluator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use spindown_bench::workload::{self, Scale};
use spindown_core::cost::CostFunction;
use spindown_core::experiment::{run_experiment, ExperimentSpec, SchedulerKind};
use spindown_core::placement::PlacementConfig;
use spindown_core::sched::MwisSolver;
use spindown_core::system::SystemConfig;
use spindown_sim::time::SimDuration;

fn bench_end_to_end(c: &mut Criterion) {
    let scale = Scale {
        requests: 10_000,
        data_items: 4_000,
        disks: 60,
        rate: 10.0,
    };
    let requests = workload::cello(scale, 42);
    let spec = |scheduler: SchedulerKind| ExperimentSpec {
        placement: PlacementConfig {
            disks: scale.disks,
            replication: 3,
            zipf_z: 1.0,
        },
        scheduler,
        system: SystemConfig {
            disks: scale.disks,
            ..SystemConfig::default()
        },
        seed: 42,
    };

    let mut group = c.benchmark_group("end_to_end_10k_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    for (name, kind) in [
        ("static", SchedulerKind::Static),
        ("random", SchedulerKind::Random),
        (
            "heuristic",
            SchedulerKind::Heuristic(CostFunction::default()),
        ),
        (
            "wsc",
            SchedulerKind::Wsc {
                cost: CostFunction::default(),
                interval: SimDuration::from_millis(100),
            },
        ),
        (
            "mwis_offline",
            SchedulerKind::Mwis {
                solver: MwisSolver::GwMin,
                max_successors: 3,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_experiment(&requests, &spec(kind.clone()))).energy_j);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
