//! # spindown-core
//!
//! The paper's contribution: energy-aware scheduling of read requests onto
//! existing data replicas so that as many disks as possible can be spun
//! down by a fixed-threshold (2CPM) power manager.
//!
//! Reproduces *"Exploiting Replication for Energy-Aware Scheduling in Disk
//! Storage Systems"* (Chou, Kim, Rotem — ICDCS 2011):
//!
//! * [`model`] — requests, disk ids, assignments (paper Table 1);
//! * [`placement`] — the experimental placement: Zipf originals + uniform
//!   replicas (§4.2);
//! * [`saving`] — Lemma 1 / Eq. 3 per-request energy savings;
//! * [`cost`] — Eq. 5/6/7 scheduling costs;
//! * [`sched`] — the five schedulers: Random, Static, Heuristic (online,
//!   §3.3), WSC (batch, §3.2), MWIS (offline, §3.1);
//! * [`system`] — the event-driven storage-system simulator;
//! * [`offline`] — the analytic offline-model evaluator + brute-force
//!   optimality oracle;
//! * [`refine`] — offline-assignment hill climbing (extension beyond the
//!   paper);
//! * [`metrics`] — everything the evaluation section plots;
//! * [`experiment`] — one-call experiment runner used by the figure
//!   harness;
//! * [`npc`] — the Theorem 3 reduction from maximum independent set;
//! * [`offload`] — write off-loading (the §2.1 assumption, implemented);
//! * [`paper_example`] — the paper's Figs. 2–4 running example as a
//!   shared fixture.
//!
//! ## Quick start
//!
//! ```
//! use spindown_core::experiment::{
//!     requests_from_trace, run_experiment, ExperimentSpec, SchedulerKind,
//! };
//! use spindown_core::placement::PlacementConfig;
//! use spindown_core::system::SystemConfig;
//! use spindown_trace::synth::{CelloLike, TraceGenerator};
//!
//! let trace = CelloLike { requests: 500, data_items: 200, ..CelloLike::default() }.generate(1);
//! let requests = requests_from_trace(&trace);
//! let spec = ExperimentSpec {
//!     placement: PlacementConfig { disks: 16, replication: 3, zipf_z: 1.0 },
//!     scheduler: SchedulerKind::Heuristic(Default::default()),
//!     system: SystemConfig { disks: 16, ..Default::default() },
//!     seed: 1,
//! };
//! let metrics = run_experiment(&requests, &spec);
//! assert!(metrics.normalized_energy() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod experiment;
pub mod metrics;
pub mod model;
pub mod npc;
pub mod offline;
pub mod offload;
pub mod paper_example;
pub mod placement;
pub mod refine;
pub mod saving;
pub mod sched;
pub mod system;

pub use experiment::{
    build_scheduler, requests_from_trace, run_experiment, scan_stream, ExperimentSpec,
    SchedulerKind, StreamRequests, StreamScan,
};
pub use metrics::{merge_islands, DiskSummary, IslandPart, RunMetrics};
pub use model::{Assignment, DataId, DiskId, Request};
pub use placement::{IslandPartition, PlacementConfig, PlacementMap};
pub use system::{
    run_system, run_system_streamed, run_system_streamed_with_jobs, run_system_with_jobs,
    PolicyKind, RequestSource, SourceError, SystemConfig,
};
