//! Shared experiment grids: one simulation per (trace, replication
//! factor, scheduler) cell. Figures 6–9 read the Cello grid; Figures
//! 14–17 read the Financial grid; the latency figures (12–13) reuse the
//! same runs plus an always-on reference.

use spindown_core::experiment::{
    run_always_on_baseline, run_experiment, ExperimentSpec, SchedulerKind,
};
use spindown_core::metrics::RunMetrics;
use spindown_core::model::Request;
use spindown_core::placement::PlacementConfig;
use spindown_core::system::SystemConfig;
use spindown_sim::pool;

use crate::workload::Scale;

/// The replication factors the paper sweeps.
pub const RF_SWEEP: [u32; 5] = [1, 2, 3, 4, 5];

/// One grid cell.
#[derive(Debug)]
pub struct GridCell {
    /// Replication factor of the run.
    pub rf: u32,
    /// Scheduler label (paper legend name).
    pub scheduler: &'static str,
    /// Full metrics of the run.
    pub metrics: RunMetrics,
}

/// A computed grid plus its always-on reference run (at rf = 1).
#[derive(Debug)]
pub struct EvalGrid {
    /// All cells, ordered by (rf, scheduler).
    pub cells: Vec<GridCell>,
    /// The always-on reference (for Figs. 12/13).
    pub always_on: RunMetrics,
}

impl EvalGrid {
    /// Runs the full scheduler × replication grid over `requests` on the
    /// calling thread. Equivalent to [`EvalGrid::compute_with_jobs`] with
    /// `jobs = 1`.
    pub fn compute(requests: &[Request], scale: Scale, zipf_z: f64, seed: u64) -> EvalGrid {
        Self::compute_with_jobs(requests, scale, zipf_z, seed, 1)
    }

    /// Runs the grid with up to `jobs` worker threads.
    ///
    /// Every cell is an independent simulation — each run derives its own
    /// RNG stream from the spec seed, never from shared mutable state —
    /// so the cells are fanned out over the shared worker pool
    /// ([`spindown_sim::pool::map_indexed`]) and collected by cell index.
    /// The grid is bit-identical to the serial (`jobs = 1`) result for
    /// any thread count. `jobs` is clamped to `1..=cell count` (and
    /// `jobs = 1` never spawns); cells run at `jobs = 1` internally so
    /// grid-level and intra-run parallelism never oversubscribe, and the
    /// always-on reference runs on the calling thread either way.
    pub fn compute_with_jobs(
        requests: &[Request],
        scale: Scale,
        zipf_z: f64,
        seed: u64,
        jobs: usize,
    ) -> EvalGrid {
        let spec_for = |scheduler: SchedulerKind, rf: u32| ExperimentSpec {
            placement: PlacementConfig {
                disks: scale.disks,
                replication: rf,
                zipf_z,
            },
            scheduler,
            system: SystemConfig {
                disks: scale.disks,
                ..SystemConfig::default()
            },
            seed,
        };

        // The cell plan, in the canonical (rf, scheduler) order the
        // figures index by.
        let mut plan: Vec<(u32, &'static str, SchedulerKind)> = Vec::new();
        for rf in RF_SWEEP {
            for kind in SchedulerKind::paper_set() {
                let label = kind.label();
                plan.push((rf, label, kind));
            }
            // Extension column: the offline planner with assignment-level
            // hill climbing (the "better MWIS algorithm" the paper
            // conjectures about in §5.1).
            plan.push((
                rf,
                "mwis-r",
                SchedulerKind::Mwis {
                    solver: spindown_core::sched::MwisSolver::GwMinRefined { passes: 4 },
                    max_successors: 3,
                },
            ));
        }

        let metrics = pool::map_indexed(jobs, plan.len(), |i| {
            let (rf, _, kind) = &plan[i];
            run_experiment(requests, &spec_for(kind.clone(), *rf))
        });

        let cells = plan
            .into_iter()
            .zip(metrics)
            .map(|((rf, scheduler, _), metrics)| GridCell {
                rf,
                scheduler,
                metrics,
            })
            .collect();
        let always_on = run_always_on_baseline(requests, &spec_for(SchedulerKind::Static, 1));
        EvalGrid { cells, always_on }
    }

    /// Looks up one cell.
    pub fn cell(&self, rf: u32, scheduler: &str) -> &GridCell {
        self.cells
            .iter()
            .find(|c| c.rf == rf && c.scheduler == scheduler)
            .unwrap_or_else(|| panic!("no grid cell for rf={rf} scheduler={scheduler}"))
    }

    /// Scheduler labels present, in paper-legend order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.scheduler) {
                out.push(c.scheduler);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn tiny_grid_computes_and_indexes() {
        let scale = Scale {
            requests: 600,
            data_items: 250,
            disks: 12,
            rate: 3.0,
        };
        let reqs = workload::cello(scale, 1);
        let grid = EvalGrid::compute(&reqs, scale, 1.0, 3);
        assert_eq!(grid.cells.len(), 5 * 6);
        assert_eq!(
            grid.schedulers(),
            vec!["random", "static", "heuristic", "wsc", "mwis", "mwis-r"]
        );
        let c = grid.cell(3, "static");
        assert_eq!(c.rf, 3);
        assert!(c.metrics.energy_j > 0.0);
        assert!((grid.always_on.normalized_energy() - 1.0).abs() < 0.05);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let scale = Scale {
            requests: 300,
            data_items: 120,
            disks: 10,
            rate: 3.0,
        };
        let reqs = workload::cello(scale, 7);
        let serial = EvalGrid::compute_with_jobs(&reqs, scale, 1.0, 11, 1);
        let wide = EvalGrid::compute_with_jobs(&reqs, scale, 1.0, 11, 8);
        assert_eq!(format!("{:?}", serial.cells), format!("{:?}", wide.cells));
        assert_eq!(
            format!("{:?}", serial.always_on),
            format!("{:?}", wide.always_on)
        );
    }

    #[test]
    #[should_panic(expected = "no grid cell")]
    fn missing_cell_panics() {
        let scale = Scale {
            requests: 100,
            data_items: 50,
            disks: 8,
            rate: 2.0,
        };
        let reqs = workload::cello(scale, 1);
        let grid = EvalGrid::compute(&reqs, scale, 1.0, 3);
        grid.cell(9, "static");
    }
}
