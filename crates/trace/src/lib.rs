//! # spindown-trace
//!
//! Workload substrate for the ICDCS 2011 reproduction: the paper evaluates
//! on the HP **Cello** and UMass **Financial1** block traces, which are not
//! redistributable. This crate provides
//!
//! * [`record`] — the trace model ([`record::Trace`],
//!   [`record::TraceRecord`], [`record::DataId`]); one data item per unique
//!   (device, block) pair, exactly as the paper defines it (§4.1);
//! * [`spc`] — parser for the SPC CSV format (Financial1's format), so the
//!   real trace drops in when available;
//! * [`srt`] — parser for textual HP SRT-style records (Cello's family);
//! * [`synth`] — deterministic generators that reproduce the traces'
//!   load-bearing statistics: [`synth::CelloLike`] (bursty Pareto-ON/OFF
//!   arrivals, Zipf popularity) and [`synth::FinancialLike`] (smooth OLTP
//!   Poisson arrivals);
//! * [`stats`] — [`stats::TraceStats`] to verify those statistics
//!   (inter-arrival CV, dispersion, popularity skew, fitted Zipf z);
//! * [`transform`] — merge / window / rescale utilities for preparing
//!   real traces (each available as a lazy stream adapter too);
//! * [`stream`] — the pull-based [`stream::RecordStream`] pipeline:
//!   incremental parsers, lazy adapters and policies that let multi-GB
//!   traces flow to the simulator in constant memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod spc;
pub mod split;
pub mod srt;
pub mod stats;
pub mod stream;
pub mod synth;
pub mod transform;

pub use record::{DataId, OpKind, Trace, TraceRecord};
pub use split::StreamSplitter;
pub use stats::TraceStats;
pub use stream::{ErasedStream, ParsePolicy, RecordStream, SkipCount, StreamError};
pub use synth::{CelloLike, FinancialLike, TraceGenerator};
