//! Per-disk request queues with selectable service disciplines.
//!
//! DiskSim — the simulator this crate substitutes for — models the drive's
//! internal command scheduling. Three classical disciplines are provided:
//!
//! * **FCFS** — first come, first served (the default; what the paper's
//!   analysis assumes);
//! * **SSTF** — shortest seek time first: serve the queued request whose
//!   LBA is closest to the head;
//! * **Elevator** (SCAN) — serve requests in the current sweep direction,
//!   reversing at the ends.
//!
//! SSTF and SCAN reduce mechanical positioning time on deep queues at the
//! price of fairness; the `scheduling` ablation bench quantifies the
//! effect on response time.

use std::collections::VecDeque;

use crate::disk::DiskRequest;

/// Which request the drive services next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First come, first served.
    #[default]
    Fcfs,
    /// Shortest seek time first (closest LBA to the head).
    Sstf,
    /// Elevator / SCAN: sweep up, then down.
    Elevator,
}

/// A disk's pending-request queue.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    discipline: QueueDiscipline,
    items: VecDeque<DiskRequest>,
    /// Elevator sweep direction: `true` = ascending LBAs.
    ascending: bool,
}

impl RequestQueue {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        RequestQueue {
            discipline,
            items: VecDeque::new(),
            ascending: true,
        }
    }

    /// The configured discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues a request (arrival order is retained for FCFS).
    pub fn push(&mut self, req: DiskRequest) {
        self.items.push_back(req);
    }

    /// Removes and returns the next request to service, given the current
    /// head position.
    pub fn pop_next(&mut self, head_lba: u64) -> Option<DiskRequest> {
        if self.items.is_empty() {
            return None;
        }
        let idx = match self.discipline {
            QueueDiscipline::Fcfs => 0,
            QueueDiscipline::Sstf => self
                .items
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.lba.abs_diff(head_lba))
                .map(|(i, _)| i)
                .expect("non-empty"),
            QueueDiscipline::Elevator => {
                // Nearest request in the sweep direction; reverse if none.
                let pick = |ascending: bool, items: &VecDeque<DiskRequest>| {
                    items
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| {
                            if ascending {
                                r.lba >= head_lba
                            } else {
                                r.lba <= head_lba
                            }
                        })
                        .min_by_key(|(_, r)| r.lba.abs_diff(head_lba))
                        .map(|(i, _)| i)
                };
                match pick(self.ascending, &self.items) {
                    Some(i) => i,
                    None => {
                        self.ascending = !self.ascending;
                        pick(self.ascending, &self.items).expect("non-empty queue")
                    }
                }
            }
        };
        self.items.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, lba: u64) -> DiskRequest {
        DiskRequest {
            id,
            lba,
            size: 4096,
        }
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = RequestQueue::new(QueueDiscipline::Fcfs);
        for (id, lba) in [(1, 500), (2, 10), (3, 900)] {
            q.push(req(id, lba));
        }
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_next(0).map(|r| r.id)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn sstf_picks_closest_to_head() {
        let mut q = RequestQueue::new(QueueDiscipline::Sstf);
        for (id, lba) in [(1, 1000), (2, 90), (3, 500)] {
            q.push(req(id, lba));
        }
        // Head at 100: closest is lba 90 (id 2), then 500, then 1000.
        assert_eq!(q.pop_next(100).unwrap().id, 2);
        assert_eq!(q.pop_next(90).unwrap().id, 3);
        assert_eq!(q.pop_next(500).unwrap().id, 1);
    }

    #[test]
    fn elevator_sweeps_then_reverses() {
        let mut q = RequestQueue::new(QueueDiscipline::Elevator);
        for (id, lba) in [(1, 50), (2, 150), (3, 300), (4, 20)] {
            q.push(req(id, lba));
        }
        // Head at 100 sweeping up: 150, 300; then reverse: 50, 20.
        assert_eq!(q.pop_next(100).unwrap().id, 2);
        assert_eq!(q.pop_next(150).unwrap().id, 3);
        assert_eq!(q.pop_next(300).unwrap().id, 1);
        assert_eq!(q.pop_next(50).unwrap().id, 4);
    }

    #[test]
    fn elevator_handles_equal_lba_as_in_direction() {
        let mut q = RequestQueue::new(QueueDiscipline::Elevator);
        q.push(req(1, 100));
        assert_eq!(q.pop_next(100).unwrap().id, 1);
    }

    #[test]
    fn pop_from_empty_is_none() {
        let mut q = RequestQueue::new(QueueDiscipline::Sstf);
        assert!(q.pop_next(0).is_none());
    }

    #[test]
    fn default_is_fcfs() {
        assert_eq!(QueueDiscipline::default(), QueueDiscipline::Fcfs);
        let q = RequestQueue::new(QueueDiscipline::default());
        assert_eq!(q.discipline(), QueueDiscipline::Fcfs);
    }
}
