//! Word-packed `u64` bitset primitives shared by the exact solvers and
//! the greedy engine's neighbor marking.
//!
//! Both branch-and-bound oracles ([`crate::mwis::exact`] and
//! [`crate::setcover::SetCoverInstance::solve_exact`]) keep their search
//! state as flat `&[u64]` word slices: an alive/covered set of `words_for(n)`
//! words, a row-major `n × words_for(n)` mask table (closed neighborhoods,
//! set element masks), and an undo arena with one `words_for(n)`-word slot
//! per search depth. Everything here operates on plain slices so the solvers
//! can carve rows and slots out of single allocations without lifetimes or
//! wrapper types getting in the way.
//!
//! Beyond the single-bit primitives, the module carries **fused
//! word-at-a-time kernels** — [`extract_and_clear`], [`and_not_assign`],
//! [`or_assign`], [`and_into`], [`and_assign`], [`weight_sum`],
//! [`intersection_weight`], [`first_set_masked`], [`ones_masked`], and the
//! test-and-clear [`take`] — so a hot loop touches each word once instead
//! of composing two or three single-purpose passes. Each fused kernel is
//! definitionally equivalent to a composition of the simple primitives
//! above it; the differential tests in this module and in
//! `tests/kernel_differential.rs` pin that equivalence on random words, so
//! the simple forms double as the retained oracles.

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Sets bit `i`.
#[inline]
pub fn set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i`.
#[inline]
pub fn clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Tests bit `i`.
#[inline]
pub fn test(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Number of set bits.
#[inline]
pub fn count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Number of set bits in `a & b` without materializing the intersection.
#[inline]
pub fn intersection_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Tests bit `i` and clears it in one access — the fused form of
/// [`test`] + [`clear`] used by the greedy engine's neighbor marking
/// (one load/store on the word instead of two loads and a store).
#[inline]
pub fn take(words: &mut [u64], i: usize) -> bool {
    let w = &mut words[i / 64];
    let mask = 1u64 << (i % 64);
    let was = *w & mask != 0;
    *w &= !mask;
    was
}

/// Index of the lowest set bit, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .position(|&w| w != 0)
        .map(|i| i * 64 + words[i].trailing_zeros() as usize)
}

/// Index of the lowest set bit of `a & b` without materializing the
/// intersection — the masked form of [`first_set`].
#[inline]
pub fn first_set_masked(a: &[u64], b: &[u64]) -> Option<usize> {
    a.iter()
        .zip(b)
        .position(|(&x, &y)| x & y != 0)
        .map(|i| i * 64 + (a[i] & b[i]).trailing_zeros() as usize)
}

/// `dst &= !mask`, word at a time.
#[inline]
pub fn and_not_assign(dst: &mut [u64], mask: &[u64]) {
    for (d, &m) in dst.iter_mut().zip(mask) {
        *d &= !m;
    }
}

/// `dst |= src`, word at a time — the backtracking restore of the
/// branch-and-bound undo arena.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst = a & b`, word at a time.
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x & y;
    }
}

/// `dst &= mask`, word at a time.
#[inline]
pub fn and_assign(dst: &mut [u64], mask: &[u64]) {
    for (d, &m) in dst.iter_mut().zip(mask) {
        *d &= m;
    }
}

/// Fused include-branch kernel: stores `set ∩ mask` into `slot` and
/// removes it from `set` in the same pass — equivalent to
/// [`and_into`]`(slot, set, mask)` followed by
/// [`and_not_assign`]`(set, slot)`, at one word traversal instead of two.
#[inline]
pub fn extract_and_clear(set: &mut [u64], mask: &[u64], slot: &mut [u64]) {
    for ((s, &m), out) in set.iter_mut().zip(mask).zip(slot.iter_mut()) {
        let removed = *s & m;
        *out = removed;
        *s &= !removed;
    }
}

/// Sum of `weights[i]` over the set bits of `words` — popcount-style
/// accumulation that walks each word's set bits with `trailing_zeros`
/// instead of testing every index.
#[inline]
pub fn weight_sum(words: &[u64], weights: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        let base = wi * 64;
        while bits != 0 {
            sum += weights[base + bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
    }
    sum
}

/// Sum of `weights[i]` over the set bits of `a & b` without materializing
/// the intersection — the masked form of [`weight_sum`].
#[inline]
pub fn intersection_weight(a: &[u64], b: &[u64], weights: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (wi, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut bits = x & y;
        let base = wi * 64;
        while bits != 0 {
            sum += weights[base + bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
    }
    sum
}

/// Iterates the set bits of `a & b` in ascending order without
/// materializing the intersection — the masked form of [`ones`].
pub fn ones_masked<'a>(a: &'a [u64], b: &'a [u64]) -> OnesMasked<'a> {
    OnesMasked {
        a,
        b,
        idx: 0,
        cur: match (a.first(), b.first()) {
            (Some(&x), Some(&y)) => x & y,
            _ => 0,
        },
    }
}

/// Iterator over the set-bit indices of an un-materialized intersection
/// (see [`ones_masked`]).
pub struct OnesMasked<'a> {
    a: &'a [u64],
    b: &'a [u64],
    idx: usize,
    cur: u64,
}

impl Iterator for OnesMasked<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.idx += 1;
            if self.idx >= self.a.len().min(self.b.len()) {
                return None;
            }
            self.cur = self.a[self.idx] & self.b[self.idx];
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some(self.idx * 64 + bit)
    }
}

/// Iterates the indices of set bits in ascending order.
pub fn ones(words: &[u64]) -> Ones<'_> {
    Ones {
        words,
        idx: 0,
        cur: words.first().copied().unwrap_or(0),
    }
}

/// Iterator over set-bit indices, lowest first (see [`ones`]).
pub struct Ones<'a> {
    words: &'a [u64],
    idx: usize,
    cur: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.idx += 1;
            if self.idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.idx];
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1; // drop the lowest set bit
        Some(self.idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn set_clear_test_roundtrip() {
        let mut ws = vec![0u64; 2];
        for i in [0usize, 1, 63, 64, 90, 127] {
            assert!(!test(&ws, i));
            set(&mut ws, i);
            assert!(test(&ws, i));
        }
        assert_eq!(count(&ws), 6);
        clear(&mut ws, 64);
        assert!(!test(&ws, 64));
        assert_eq!(count(&ws), 5);
    }

    #[test]
    fn ones_crosses_word_boundaries() {
        let mut ws = vec![0u64; 3];
        let bits = [3usize, 63, 64, 100, 128, 191];
        for &b in &bits {
            set(&mut ws, b);
        }
        assert_eq!(ones(&ws).collect::<Vec<_>>(), bits);
        assert_eq!(first_set(&ws), Some(3));
    }

    #[test]
    fn empty_and_zero_sets() {
        assert_eq!(ones(&[]).next(), None);
        assert_eq!(first_set(&[]), None);
        assert_eq!(first_set(&[0, 0]), None);
        assert_eq!(count(&[]), 0);
    }

    #[test]
    fn intersection_count_matches_manual() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b0110u64, 1u64 << 63];
        assert_eq!(intersection_count(&a, &b), 1 + 1);
    }

    /// Deterministic xorshift word generator for the kernel tests.
    fn words(seed: u64, len: usize) -> Vec<u64> {
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn take_is_test_then_clear() {
        let mut fused = words(7, 3);
        let mut composed = fused.clone();
        for i in [0usize, 1, 63, 64, 100, 191, 5, 64] {
            let expect = test(&composed, i);
            clear(&mut composed, i);
            assert_eq!(take(&mut fused, i), expect, "bit {i}");
            assert_eq!(fused, composed, "bit {i}");
        }
    }

    #[test]
    fn fused_kernels_match_primitive_compositions() {
        for seed in 1..20u64 {
            let a = words(seed, 4);
            let b = words(seed.wrapping_mul(0x9e3779b97f4a7c15), 4);

            let mut d = a.clone();
            and_not_assign(&mut d, &b);
            let manual: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & !y).collect();
            assert_eq!(d, manual);

            let mut d = a.clone();
            or_assign(&mut d, &b);
            let manual: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
            assert_eq!(d, manual);

            let mut d = vec![0u64; 4];
            and_into(&mut d, &a, &b);
            let manual: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            assert_eq!(d, manual);

            let mut d = a.clone();
            and_assign(&mut d, &b);
            assert_eq!(d, manual);

            // extract_and_clear == and_into + and_not_assign.
            let mut set = a.clone();
            let mut slot = vec![0u64; 4];
            extract_and_clear(&mut set, &b, &mut slot);
            let mut oracle_set = a.clone();
            let mut oracle_slot = vec![0u64; 4];
            and_into(&mut oracle_slot, &a, &b);
            and_not_assign(&mut oracle_set, &oracle_slot);
            assert_eq!(slot, oracle_slot);
            assert_eq!(set, oracle_set);
        }
    }

    #[test]
    fn weight_kernels_match_ones_iteration() {
        for seed in 1..20u64 {
            let a = words(seed, 3);
            let b = words(seed + 100, 3);
            let weights: Vec<f64> = (0..192).map(|i| (i as f64) * 0.5 + 1.0).collect();
            let oracle: f64 = ones(&a).map(|i| weights[i]).sum();
            assert_eq!(weight_sum(&a, &weights), oracle);
            let inter: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            let oracle: f64 = ones(&inter).map(|i| weights[i]).sum();
            assert_eq!(intersection_weight(&a, &b, &weights), oracle);
        }
    }

    #[test]
    fn masked_iteration_matches_materialized() {
        for seed in 1..20u64 {
            let a = words(seed, 3);
            let b = words(seed + 7, 3);
            let inter: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            assert_eq!(
                ones_masked(&a, &b).collect::<Vec<_>>(),
                ones(&inter).collect::<Vec<_>>()
            );
            assert_eq!(first_set_masked(&a, &b), first_set(&inter));
        }
        assert_eq!(first_set_masked(&[0, 0], &[u64::MAX, u64::MAX]), None);
        assert_eq!(ones_masked(&[], &[]).next(), None);
    }
}
