//! Energy-aware `WSC` batch scheduler (paper §3.2, Theorem 2).
//!
//! Every scheduling interval (0.1 s in the paper), the queued requests
//! become a weighted-set-cover instance: elements are the requests, each
//! candidate disk is a set covering the requests whose data it holds, and
//! the set weight is the disk's marginal cost. The greedy
//! most-cost-effective-set algorithm selects the disks; each request is
//! then dispatched to the cheapest selected disk that holds its data.
//!
//! Per §4.3 the disk weights use the *same composite cost function* as the
//! online heuristic (Eq. 6), so the batch scheduler also balances energy
//! against response time.

use spindown_graph::setcover::SetCoverInstance;
use spindown_sim::time::SimDuration;

use crate::cost::CostFunction;
use crate::model::{DiskId, Request};
use crate::sched::{ScheduleMode, Scheduler, SystemView};

/// The paper's batch energy-aware scheduler.
#[derive(Debug, Clone)]
pub struct WscScheduler {
    cost: CostFunction,
    interval: SimDuration,
}

impl WscScheduler {
    /// Creates the scheduler with the paper's defaults: Eq. 6 cost at
    /// `α = 0.2, β = 100` and a 0.1 s batching interval.
    pub fn paper_defaults() -> Self {
        WscScheduler::new(CostFunction::default(), SimDuration::from_millis(100))
    }

    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the cost function is invalid or the interval is zero.
    pub fn new(cost: CostFunction, interval: SimDuration) -> Self {
        cost.validate().expect("invalid cost function");
        assert!(!interval.is_zero(), "batch interval must be positive");
        WscScheduler { cost, interval }
    }

    /// The batching interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

impl Scheduler for WscScheduler {
    fn name(&self) -> &'static str {
        "wsc"
    }

    fn mode(&self) -> ScheduleMode {
        ScheduleMode::Batch(self.interval)
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        if reqs.is_empty() {
            return Vec::new();
        }
        // Candidate disks: every location of every queued request.
        let mut candidates: Vec<DiskId> = reqs
            .iter()
            .flat_map(|r| view.locations(r.data).iter().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        // Build the WSC instance: one element per request, one set per
        // candidate disk.
        let mut instance = SetCoverInstance::new(reqs.len());
        let mut disk_cost = Vec::with_capacity(candidates.len());
        for &d in &candidates {
            let covered = reqs
                .iter()
                .enumerate()
                .filter_map(|(i, r)| view.locations(r.data).contains(&d).then_some(i as u32));
            let c = self.cost.cost(view.status(d), view.now, view.params);
            instance.add_set(c, covered);
            disk_cost.push(c);
        }
        let cover = instance
            .solve_greedy()
            .expect("every request has at least one location, so a cover exists");

        // Dispatch each request to the cheapest selected disk holding its
        // data (ties to the lower disk id).
        let selected: Vec<(DiskId, f64)> = cover
            .sets
            .iter()
            .map(|&s| (candidates[s], disk_cost[s]))
            .collect();
        reqs.iter()
            .map(|r| {
                let locs = view.locations(r.data);
                selected
                    .iter()
                    .filter(|(d, _)| locs.contains(d))
                    .min_by(|(da, ca), (db, cb)| {
                        ca.partial_cmp(cb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(da.cmp(db))
                    })
                    .map(|(d, _)| *d)
                    .expect("cover covers every request")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::{ExplicitPlacement, LocationProvider};
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    fn standby(n: usize) -> Vec<DiskStatus> {
        vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            n
        ]
    }

    fn reqs(datas: &[u64]) -> Vec<Request> {
        datas
            .iter()
            .enumerate()
            .map(|(i, &d)| Request {
                index: i as u32,
                at: SimTime::ZERO,
                data: DataId(d),
                size: 4096,
            })
            .collect()
    }

    /// The paper's Fig. 2 batch example: the scheduler must find schedule
    /// B — requests r1,r2,r3,r5 on d1 and r4,r6 on d3, using only 2 disks.
    #[test]
    fn fig2_schedule_b() {
        // b1..b6 -> data 0..5; d1..d4 -> disks 0..3.
        let placement = ExplicitPlacement::new(
            vec![
                vec![DiskId(0)],                       // b1: d1
                vec![DiskId(0), DiskId(1)],            // b2: d1,d2
                vec![DiskId(0), DiskId(1), DiskId(3)], // b3: d1,d2,d4
                vec![DiskId(2), DiskId(3)],            // b4: d3,d4
                vec![DiskId(0), DiskId(3)],            // b5: d1,d4
                vec![DiskId(2), DiskId(3)],            // b6: d3,d4
            ],
            4,
        );
        let params = PowerParams::paper_example();
        let statuses = standby(4);
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        // Pure-energy cost so the toy example matches the paper exactly.
        let mut s = WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let batch = reqs(&[0, 1, 2, 3, 4, 5]);
        let picks = s.assign(&batch, &view);
        // Requests must land on exactly two disks: d1 (0) and d3 (2).
        assert_eq!(
            picks,
            vec![
                DiskId(0),
                DiskId(0),
                DiskId(0),
                DiskId(2),
                DiskId(0),
                DiskId(2)
            ]
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0)]], 1);
        let params = PowerParams::barracuda();
        let statuses = standby(1);
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = WscScheduler::paper_defaults();
        assert!(s.assign(&[], &view).is_empty());
    }

    #[test]
    fn prefers_already_spinning_disk() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let mut statuses = standby(2);
        statuses[1] = DiskStatus {
            state: DiskPowerState::Active,
            last_request_at: Some(SimTime::ZERO),
            load: 1,
        };
        let view = SystemView {
            now: SimTime::from_secs(1),
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let picks = s.assign(&reqs(&[0]), &view);
        assert_eq!(picks, vec![DiskId(1)]);
    }

    #[test]
    fn mode_reports_interval() {
        let s = WscScheduler::paper_defaults();
        assert_eq!(s.mode(), ScheduleMode::Batch(SimDuration::from_millis(100)));
        assert_eq!(s.interval(), SimDuration::from_millis(100));
        assert_eq!(s.name(), "wsc");
    }

    #[test]
    fn assignments_always_point_to_valid_locations() {
        let placement = ExplicitPlacement::new(
            vec![
                vec![DiskId(0), DiskId(2)],
                vec![DiskId(1)],
                vec![DiskId(2), DiskId(1)],
            ],
            3,
        );
        let params = PowerParams::barracuda();
        let statuses = standby(3);
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = WscScheduler::paper_defaults();
        let batch = reqs(&[0, 1, 2, 0, 2]);
        let picks = s.assign(&batch, &view);
        for (r, d) in batch.iter().zip(&picks) {
            assert!(placement.locations(r.data).contains(d));
        }
    }

    #[test]
    #[should_panic(expected = "batch interval")]
    fn zero_interval_rejected() {
        WscScheduler::new(CostFunction::default(), SimDuration::ZERO);
    }
}
