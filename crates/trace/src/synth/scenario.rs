//! Adversarial arrival scenarios: diurnal load curves and flash crowds.
//!
//! Fixed-threshold spin-down (2CPM) and predictive policies only separate
//! under non-stationary arrivals — a Poisson stream gives every policy
//! the same exponential idle distribution to work with. This module adds
//! the two classic adversaries from the energy-management literature:
//!
//! * [`DiurnalProcess`] — a sinusoid-modulated Poisson process (NHPP via
//!   Lewis–Shedler thinning): long overnight troughs reward early
//!   spin-down, daytime peaks punish it.
//! * [`FlashCrowdProcess`] — a sparse background stream with superimposed
//!   high-rate bursts: the idle-length distribution is bimodal (short
//!   intra-burst gaps, long inter-burst gaps), exactly the shape a
//!   quantile predictor exploits and a fixed threshold cannot.
//!
//! Both ship `generate`/`stream` pairs with the same bit-identical
//! contract as [`crate::synth::arrivals::OnOffProcess`]: the stream
//! replays the batch generator's rng draws exactly, and the caller's rng
//! is left at the same position either way (all draws happen on forked
//! child rngs).

use std::f64::consts::TAU;

use spindown_sim::rng::SimRng;
use spindown_sim::time::SimTime;

use crate::record::{OpKind, Trace, TraceRecord};
use crate::synth::popularity::ZipfPopularity;
use crate::synth::TraceGenerator;

/// Sinusoid-modulated Poisson arrivals (non-homogeneous Poisson process):
///
/// ```text
/// rate(t) = base_rate · (1 + depth · sin(2π t / period_s + phase))
/// ```
///
/// Sampled by Lewis–Shedler thinning: candidates arrive at the peak rate
/// `base_rate · (1 + depth)` and are accepted with probability
/// `rate(t) / peak`.
#[derive(Debug, Clone)]
pub struct DiurnalProcess {
    /// Mean arrival rate, arrivals per second.
    pub base_rate: f64,
    /// Modulation depth in `[0, 1]`: 0 = plain Poisson, 1 = the trough
    /// rate touches zero.
    pub depth: f64,
    /// Length of one day, seconds.
    pub period_s: f64,
    /// Phase offset, radians (`-π/2` starts the trace at the trough).
    pub phase: f64,
}

impl DiurnalProcess {
    fn validate(&self) {
        assert!(self.base_rate > 0.0, "base rate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.depth),
            "modulation depth must be in [0, 1]"
        );
        assert!(self.period_s > 0.0, "period must be positive");
    }

    /// Instantaneous arrival rate at `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.base_rate * (1.0 + self.depth * (TAU * t / self.period_s + self.phase).sin())
    }

    /// Generates exactly `n` arrival times (ascending, starting near zero).
    ///
    /// # Panics
    ///
    /// Panics if `base_rate` or `period_s` is non-positive or `depth` is
    /// outside `[0, 1]`.
    pub fn generate(&self, rng: &mut SimRng, n: usize) -> Vec<SimTime> {
        self.validate();
        let mut src_rng = rng.fork(0);
        let peak = self.base_rate * (1.0 + self.depth);
        let mut t = 0.0;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            t += src_rng.exponential(peak);
            if src_rng.next_f64() * peak < self.rate_at(t) {
                out.push(SimTime::from_secs_f64(t));
            }
        }
        out
    }

    /// Lazy equivalent of [`DiurnalProcess::generate`]: yields the same
    /// `n` arrival times in the same order. All draws happen on a forked
    /// child rng, so the caller's `rng` ends at the same position either
    /// way.
    ///
    /// # Panics
    ///
    /// As [`DiurnalProcess::generate`].
    pub fn stream(&self, rng: &mut SimRng, n: usize) -> DiurnalStream {
        self.validate();
        DiurnalStream {
            proc: self.clone(),
            rng: rng.fork(0),
            t: 0.0,
            remaining: n,
        }
    }
}

/// Lazy arrival stream for [`DiurnalProcess`] — see
/// [`DiurnalProcess::stream`].
#[derive(Debug, Clone)]
pub struct DiurnalStream {
    proc: DiurnalProcess,
    rng: SimRng,
    t: f64,
    remaining: usize,
}

impl Iterator for DiurnalStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        let peak = self.proc.base_rate * (1.0 + self.proc.depth);
        loop {
            self.t += self.rng.exponential(peak);
            if self.rng.next_f64() * peak < self.proc.rate_at(self.t) {
                self.remaining -= 1;
                return Some(SimTime::from_secs_f64(self.t));
            }
        }
    }
}

/// Sparse background Poisson stream with superimposed flash-crowd bursts.
///
/// Burst starts are separated by exponential gaps of mean
/// `burst_every_s` (measured from the previous burst's end); each burst
/// emits a Poisson stream at `burst_rate` for `burst_duration_s`. The
/// idle-gap distribution a disk observes is therefore bimodal: dense
/// intra-burst gaps and long quiet inter-burst gaps.
#[derive(Debug, Clone)]
pub struct FlashCrowdProcess {
    /// Background arrival rate between bursts, arrivals per second.
    pub base_rate: f64,
    /// Arrival rate inside a burst, arrivals per second.
    pub burst_rate: f64,
    /// Mean quiet gap between bursts, seconds.
    pub burst_every_s: f64,
    /// Length of each burst, seconds.
    pub burst_duration_s: f64,
}

impl FlashCrowdProcess {
    fn validate(&self) {
        assert!(
            self.base_rate > 0.0
                && self.burst_rate > 0.0
                && self.burst_every_s > 0.0
                && self.burst_duration_s > 0.0,
            "flash-crowd parameters must be positive"
        );
    }

    /// Expected aggregate arrival rate, arrivals per second.
    pub fn mean_rate(&self) -> f64 {
        let cycle = self.burst_every_s + self.burst_duration_s;
        self.base_rate + self.burst_rate * self.burst_duration_s / cycle
    }

    /// Generates exactly `n` arrival times (ascending, starting near
    /// zero) by merging the background stream (child rng 0) with the
    /// burst stream (child rng 1).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn generate(&self, rng: &mut SimRng, n: usize) -> Vec<SimTime> {
        self.validate();
        let mut bg = PoissonSource::new(rng.fork(0), self.base_rate);
        let mut burst = BurstSource::new(self, rng.fork(1));
        let mut out = Vec::with_capacity(n);
        let mut a = bg.next_time();
        let mut b = burst.next_time();
        while out.len() < n {
            if a <= b {
                out.push(a);
                a = bg.next_time();
            } else {
                out.push(b);
                b = burst.next_time();
            }
        }
        out
    }

    /// Lazy equivalent of [`FlashCrowdProcess::generate`]: same arrivals,
    /// same order, caller's rng at the same position (both sources live
    /// on forked child rngs).
    ///
    /// # Panics
    ///
    /// As [`FlashCrowdProcess::generate`].
    pub fn stream(&self, rng: &mut SimRng, n: usize) -> FlashCrowdStream {
        self.validate();
        let mut bg = PoissonSource::new(rng.fork(0), self.base_rate);
        let mut burst = BurstSource::new(self, rng.fork(1));
        let next_bg = bg.next_time();
        let next_burst = burst.next_time();
        FlashCrowdStream {
            bg,
            burst,
            next_bg,
            next_burst,
            remaining: n,
        }
    }
}

/// An endless Poisson stream on its own rng.
#[derive(Debug, Clone)]
struct PoissonSource {
    rng: SimRng,
    rate: f64,
    t: f64,
}

impl PoissonSource {
    fn new(rng: SimRng, rate: f64) -> Self {
        PoissonSource { rng, rate, t: 0.0 }
    }

    fn next_time(&mut self) -> SimTime {
        self.t += self.rng.exponential(self.rate);
        SimTime::from_secs_f64(self.t)
    }
}

/// The endless burst stream: exponential quiet gaps, then a
/// `burst_duration_s` window of Poisson arrivals at `burst_rate`.
#[derive(Debug, Clone)]
struct BurstSource {
    rng: SimRng,
    burst_rate: f64,
    burst_every_s: f64,
    burst_duration_s: f64,
    /// Current position; outside a burst this is the last burst's end.
    t: f64,
    /// End of the current burst window, or `None` while quiet.
    burst_end: Option<f64>,
}

impl BurstSource {
    fn new(proc: &FlashCrowdProcess, rng: SimRng) -> Self {
        BurstSource {
            rng,
            burst_rate: proc.burst_rate,
            burst_every_s: proc.burst_every_s,
            burst_duration_s: proc.burst_duration_s,
            t: 0.0,
            burst_end: None,
        }
    }

    fn next_time(&mut self) -> SimTime {
        loop {
            let end = match self.burst_end {
                Some(end) => end,
                None => {
                    // Quiet gap, then a new burst window opens.
                    self.t += self.rng.exponential(1.0 / self.burst_every_s);
                    let end = self.t + self.burst_duration_s;
                    self.burst_end = Some(end);
                    end
                }
            };
            self.t += self.rng.exponential(self.burst_rate);
            if self.t < end {
                return SimTime::from_secs_f64(self.t);
            }
            // Burst exhausted; the next quiet gap starts at its end.
            self.t = end;
            self.burst_end = None;
        }
    }
}

/// Lazy arrival stream for [`FlashCrowdProcess`] — see
/// [`FlashCrowdProcess::stream`]. Two-way merge of the background and
/// burst sources with one look-ahead each.
#[derive(Debug, Clone)]
pub struct FlashCrowdStream {
    bg: PoissonSource,
    burst: BurstSource,
    next_bg: SimTime,
    next_burst: SimTime,
    remaining: usize,
}

impl Iterator for FlashCrowdStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(if self.next_bg <= self.next_burst {
            std::mem::replace(&mut self.next_bg, self.bg.next_time())
        } else {
            std::mem::replace(&mut self.next_burst, self.burst.next_time())
        })
    }
}

/// Shared record-level stream for the scenario trace generators: pairs an
/// arrival stream with the Zipf popularity and op draws, exactly like
/// [`crate::synth::CelloStream`].
#[derive(Debug)]
pub struct ScenarioStream<A> {
    arrivals: A,
    rng: SimRng,
    pop: ZipfPopularity,
    block_size: u64,
    write_fraction: f64,
}

impl<A: Iterator<Item = SimTime>> Iterator for ScenarioStream<A> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let at = self.arrivals.next()?;
        Some(TraceRecord {
            at,
            data: self.pop.sample(&mut self.rng),
            size: self.block_size,
            op: if self.rng.chance(self.write_fraction) {
                OpKind::Write
            } else {
                OpKind::Read
            },
        })
    }
}

macro_rules! scenario_trace_generator {
    ($like:ident, $proc:ty, $stream:ty, $salt:expr, $name:expr) => {
        impl $like {
            /// Lazy equivalent of [`TraceGenerator::generate`]: the same
            /// records in the same order without materializing a
            /// [`Trace`].
            pub fn stream(&self, seed: u64) -> ScenarioStream<$stream> {
                let mut rng = SimRng::seed_from_u64(seed ^ $salt);
                let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
                    .expect("valid popularity parameters");
                let arrivals = self.arrivals.stream(&mut rng, self.requests);
                ScenarioStream {
                    arrivals,
                    rng,
                    pop,
                    block_size: self.block_size,
                    write_fraction: self.write_fraction,
                }
            }
        }

        impl TraceGenerator for $like {
            fn generate(&self, seed: u64) -> Trace {
                let mut rng = SimRng::seed_from_u64(seed ^ $salt);
                let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
                    .expect("valid popularity parameters");
                let times = self.arrivals.generate(&mut rng, self.requests);
                let records = times
                    .into_iter()
                    .map(|at| TraceRecord {
                        at,
                        data: pop.sample(&mut rng),
                        size: self.block_size,
                        op: if rng.chance(self.write_fraction) {
                            OpKind::Write
                        } else {
                            OpKind::Read
                        },
                    })
                    .collect();
                Trace::from_records(records)
            }

            fn name(&self) -> &'static str {
                $name
            }
        }
    };
}

/// Diurnal synthetic trace: sinusoid-modulated arrivals + Zipf
/// popularity. The default compresses a "day" into one hour so short
/// simulations still cross several troughs.
#[derive(Debug, Clone)]
pub struct DiurnalLike {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct data items in the id space.
    pub data_items: usize,
    /// Zipf exponent of block popularity.
    pub popularity_z: f64,
    /// Block size, bytes.
    pub block_size: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// The modulated arrival process.
    pub arrivals: DiurnalProcess,
}

impl Default for DiurnalLike {
    fn default() -> Self {
        DiurnalLike {
            requests: 70_000,
            data_items: 30_000,
            popularity_z: 1.0,
            block_size: 512 * 1024,
            write_fraction: 0.0,
            arrivals: DiurnalProcess {
                base_rate: 45.0,
                depth: 0.9,
                period_s: 3600.0,
                phase: -std::f64::consts::FRAC_PI_2,
            },
        }
    }
}

scenario_trace_generator!(
    DiurnalLike,
    DiurnalProcess,
    DiurnalStream,
    0xD1DA,
    "diurnal"
);

/// Flash-crowd synthetic trace: sparse background with superimposed
/// bursts, Zipf popularity. The default background is quiet enough that
/// disks see long inter-burst idle periods — the regime where
/// predictive spin-down separates from 2CPM.
#[derive(Debug, Clone)]
pub struct FlashCrowdLike {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct data items in the id space.
    pub data_items: usize,
    /// Zipf exponent of block popularity.
    pub popularity_z: f64,
    /// Block size, bytes.
    pub block_size: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// The bursty arrival process.
    pub arrivals: FlashCrowdProcess,
}

impl Default for FlashCrowdLike {
    fn default() -> Self {
        FlashCrowdLike {
            requests: 70_000,
            data_items: 30_000,
            popularity_z: 1.0,
            block_size: 512 * 1024,
            write_fraction: 0.0,
            arrivals: FlashCrowdProcess {
                base_rate: 2.0,
                burst_rate: 400.0,
                burst_every_s: 180.0,
                burst_duration_s: 10.0,
            },
        }
    }
}

scenario_trace_generator!(
    FlashCrowdLike,
    FlashCrowdProcess,
    FlashCrowdStream,
    0xF1A5,
    "flash-crowd"
);

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal() -> DiurnalProcess {
        DiurnalProcess {
            base_rate: 20.0,
            depth: 0.9,
            period_s: 600.0,
            phase: 0.0,
        }
    }

    fn flash() -> FlashCrowdProcess {
        FlashCrowdProcess {
            base_rate: 2.0,
            burst_rate: 200.0,
            burst_every_s: 60.0,
            burst_duration_s: 5.0,
        }
    }

    #[test]
    fn diurnal_produces_exact_count_sorted() {
        let mut rng = SimRng::seed_from_u64(1);
        let ts = diurnal().generate(&mut rng, 5_000);
        assert_eq!(ts.len(), 5_000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diurnal_rate_actually_modulates() {
        // Count arrivals in the first rising half-period vs the falling
        // half: with phase 0 the first quarter-period alone carries the
        // sinusoid's peak.
        let proc = diurnal();
        let mut rng = SimRng::seed_from_u64(2);
        let ts = proc.generate(&mut rng, 20_000);
        let half = proc.period_s / 2.0;
        let span = ts.last().unwrap().as_secs_f64();
        let mut peak_half = 0usize;
        let mut trough_half = 0usize;
        for t in &ts {
            let t = t.as_secs_f64();
            if (t % proc.period_s) < half {
                peak_half += 1;
            } else {
                trough_half += 1;
            }
        }
        assert!(span > proc.period_s, "need at least one full period");
        assert!(
            peak_half as f64 > 1.5 * trough_half as f64,
            "peak {peak_half} vs trough {trough_half}"
        );
    }

    #[test]
    fn diurnal_stream_matches_generate_and_rng_position() {
        for seed in [3u64, 7, 11] {
            let proc = diurnal();
            let mut rng_a = SimRng::seed_from_u64(seed);
            let batch = proc.generate(&mut rng_a, 5_000);
            let mut rng_b = SimRng::seed_from_u64(seed);
            let streamed: Vec<SimTime> = proc.stream(&mut rng_b, 5_000).collect();
            assert_eq!(streamed, batch);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng position differs");
        }
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn diurnal_rejects_bad_depth() {
        let mut p = diurnal();
        p.depth = 1.5;
        p.generate(&mut SimRng::seed_from_u64(0), 10);
    }

    #[test]
    fn flash_crowd_produces_exact_count_sorted() {
        let mut rng = SimRng::seed_from_u64(4);
        let ts = flash().generate(&mut rng, 5_000);
        assert_eq!(ts.len(), 5_000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn flash_crowd_gaps_are_bimodal() {
        // Most gaps are intra-burst (≲ 1/burst_rate); a visible minority
        // are second-scale background gaps inside the lulls. A Poisson
        // stream at the same mean rate (~17/s here) would essentially
        // never produce second-scale gaps (P ≈ e⁻¹⁷ each).
        let proc = flash();
        let mut rng = SimRng::seed_from_u64(5);
        let ts = proc.generate(&mut rng, 20_000);
        let mut long_gaps = 0usize;
        let mut short_gaps = 0usize;
        for w in ts.windows(2) {
            let gap = w[1].as_secs_f64() - w[0].as_secs_f64();
            if gap > 1.0 {
                long_gaps += 1;
            } else if gap < 0.1 {
                short_gaps += 1;
            }
        }
        assert!(long_gaps > 100, "long gaps {long_gaps}");
        assert!(short_gaps > 10_000, "short gaps {short_gaps}");
    }

    #[test]
    fn flash_crowd_stream_matches_generate_and_rng_position() {
        for seed in [3u64, 7, 11] {
            let proc = flash();
            let mut rng_a = SimRng::seed_from_u64(seed);
            let batch = proc.generate(&mut rng_a, 5_000);
            let mut rng_b = SimRng::seed_from_u64(seed);
            let streamed: Vec<SimTime> = proc.stream(&mut rng_b, 5_000).collect();
            assert_eq!(streamed, batch);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng position differs");
        }
    }

    #[test]
    fn diurnal_trace_stream_matches_generate() {
        for (seed, wf) in [(7u64, 0.0), (12, 0.25)] {
            let gen = DiurnalLike {
                requests: 4_000,
                data_items: 1_500,
                write_fraction: wf,
                ..DiurnalLike::default()
            };
            let batch = gen.generate(seed);
            let streamed: Vec<TraceRecord> = gen.stream(seed).collect();
            assert_eq!(streamed, batch.records());
        }
    }

    #[test]
    fn flash_crowd_trace_stream_matches_generate() {
        for (seed, wf) in [(7u64, 0.0), (12, 0.25)] {
            let gen = FlashCrowdLike {
                requests: 4_000,
                data_items: 1_500,
                write_fraction: wf,
                ..FlashCrowdLike::default()
            };
            let batch = gen.generate(seed);
            let streamed: Vec<TraceRecord> = gen.stream(seed).collect();
            assert_eq!(streamed, batch.records());
        }
    }

    #[test]
    fn trace_generators_deterministic_and_named() {
        let d = DiurnalLike {
            requests: 500,
            data_items: 200,
            ..DiurnalLike::default()
        };
        assert_eq!(d.generate(9).records(), d.generate(9).records());
        assert_eq!(d.name(), "diurnal");
        let f = FlashCrowdLike {
            requests: 500,
            data_items: 200,
            ..FlashCrowdLike::default()
        };
        assert_eq!(f.generate(9).records(), f.generate(9).records());
        assert_eq!(f.name(), "flash-crowd");
    }
}
