//! Run metrics: everything the paper's evaluation section plots.

use spindown_disk::state::DiskPowerState;
use spindown_sim::stats::LatencyHistogram;

/// Per-disk summary (one bar of the paper's Fig. 9/17).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSummary {
    /// Total energy consumed by the disk, joules.
    pub energy_j: f64,
    /// Fraction of the horizon spent in each power state, indexed by
    /// [`DiskPowerState::index`].
    pub state_fractions: [f64; DiskPowerState::COUNT],
    /// Spin-up transitions.
    pub spinups: u64,
    /// Spin-down transitions.
    pub spindowns: u64,
    /// Requests serviced.
    pub requests: u64,
}

impl DiskSummary {
    /// Fraction of time in standby — the sort key of Fig. 9.
    pub fn standby_fraction(&self) -> f64 {
        self.state_fractions[DiskPowerState::Standby.index()]
    }
}

/// Complete results of one simulation run.
///
/// `PartialEq` lets differential tests assert the streaming and
/// materialized pipelines produce bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// Requests completed.
    pub requests: usize,
    /// Measurement horizon, seconds.
    pub horizon_s: f64,
    /// Total energy across all disks, joules.
    pub energy_j: f64,
    /// Energy an always-on configuration would consume over the same
    /// horizon (all disks idle throughout), joules — the Fig. 6/14
    /// normalization baseline.
    pub always_on_j: f64,
    /// Total spin-up transitions (all disks).
    pub spinups: u64,
    /// Total spin-down transitions (all disks).
    pub spindowns: u64,
    /// Response-time distribution (arrival → completion).
    pub response: LatencyHistogram,
    /// Per-disk summaries, indexed by disk id.
    pub per_disk: Vec<DiskSummary>,
    /// Optional sampled total-power timeline `(t_seconds, watts)` —
    /// populated when the system config enables sampling.
    pub power_timeline: Vec<(f64, f64)>,
    /// Peak number of events resident in the simulator's event queue.
    /// Under streamed ingestion this is bounded by in-flight disk work,
    /// not trace length — the metric that proves constant-memory replay.
    pub peak_events: usize,
    /// Peak number of requests buffered by the pipeline at once (batch
    /// buffer plus dispatched-but-uncompleted accounting).
    pub peak_in_flight: usize,
}

impl RunMetrics {
    /// Energy normalized to the always-on configuration (Fig. 6).
    pub fn normalized_energy(&self) -> f64 {
        if self.always_on_j <= 0.0 {
            0.0
        } else {
            self.energy_j / self.always_on_j
        }
    }

    /// Combined spin transitions — the Fig. 7/15 metric.
    pub fn spin_cycles(&self) -> u64 {
        self.spinups + self.spindowns
    }

    /// Mean response time, seconds (Fig. 8/16).
    pub fn response_mean_s(&self) -> f64 {
        self.response.mean()
    }

    /// 90th-percentile response time, seconds (Fig. 13).
    pub fn response_p90_s(&self) -> f64 {
        self.response.quantile(0.90)
    }

    /// Per-disk state fractions sorted by ascending standby time — the
    /// x-axis ordering of Fig. 9/17.
    pub fn fractions_sorted_by_standby(&self) -> Vec<[f64; DiskPowerState::COUNT]> {
        let mut rows: Vec<[f64; DiskPowerState::COUNT]> =
            self.per_disk.iter().map(|d| d.state_fractions).collect();
        rows.sort_by(|a, b| {
            a[DiskPowerState::Standby.index()]
                .partial_cmp(&b[DiskPowerState::Standby.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Mean standby fraction across disks.
    pub fn mean_standby_fraction(&self) -> f64 {
        if self.per_disk.is_empty() {
            return 0.0;
        }
        self.per_disk
            .iter()
            .map(DiskSummary::standby_fraction)
            .sum::<f64>()
            / self.per_disk.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(standby: f64, energy: f64) -> DiskSummary {
        let mut fractions = [0.0; DiskPowerState::COUNT];
        fractions[DiskPowerState::Standby.index()] = standby;
        fractions[DiskPowerState::Idle.index()] = 1.0 - standby;
        DiskSummary {
            energy_j: energy,
            state_fractions: fractions,
            spinups: 1,
            spindowns: 1,
            requests: 10,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            scheduler: "test".into(),
            requests: 30,
            horizon_s: 100.0,
            energy_j: 500.0,
            always_on_j: 1000.0,
            spinups: 3,
            spindowns: 2,
            response: LatencyHistogram::default(),
            per_disk: vec![
                summary(0.9, 100.0),
                summary(0.1, 300.0),
                summary(0.5, 100.0),
            ],
            power_timeline: Vec::new(),
            peak_events: 0,
            peak_in_flight: 0,
        }
    }

    #[test]
    fn normalized_energy() {
        let m = metrics();
        assert!((m.normalized_energy() - 0.5).abs() < 1e-12);
        let mut z = metrics();
        z.always_on_j = 0.0;
        assert_eq!(z.normalized_energy(), 0.0);
    }

    #[test]
    fn spin_cycles_sum() {
        assert_eq!(metrics().spin_cycles(), 5);
    }

    #[test]
    fn standby_sort_ascending() {
        let rows = metrics().fractions_sorted_by_standby();
        let sb = DiskPowerState::Standby.index();
        assert!((rows[0][sb] - 0.1).abs() < 1e-12);
        assert!((rows[2][sb] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mean_standby() {
        let m = metrics();
        assert!((m.mean_standby_fraction() - 0.5).abs() < 1e-12);
        let empty = RunMetrics {
            per_disk: vec![],
            ..metrics()
        };
        assert_eq!(empty.mean_standby_fraction(), 0.0);
    }

    #[test]
    fn response_accessors() {
        let mut m = metrics();
        m.response.record_secs(0.01);
        m.response.record_secs(0.01);
        m.response.record_secs(10.0);
        assert!(m.response_mean_s() > 3.0);
        assert!(m.response_p90_s() >= 9.0);
    }
}
