//! The paper's NP-completeness reduction (Theorem 3): from maximum
//! independent set to offline energy-aware scheduling.
//!
//! Construction (§B, Theorem 3): given a graph `G(V, E)`, emit for each
//! edge `e = (v_i, v_j)` a request `r_e` whose data lives on disks `d_i`
//! and `d_j`, plus dummy requests `r_{e,i}` (only on `d_i`) and `r_{e,j}`
//! (only on `d_j`), all three sharing `r_e`'s arrival time; consecutive
//! edges are separated by intervals far larger than the breakeven time.
//!
//! ### Reproduction note
//!
//! The paper's proof sketch ends with "it is then easy to show" and leaves
//! the MIS correspondence implicit. Analyzed under the paper's own energy
//! model, the dummies force both endpoint disks awake at every edge time,
//! which makes the total energy orientation-independent — the sketch as
//! written does not pin down the claimed equivalence (see EXPERIMENTS.md).
//! We therefore implement the construction faithfully and verify the
//! properties that *do* hold and that the scheduling pipeline must
//! satisfy on these adversarial instances: the conflict graph built by
//! the MWIS scheduler has one compatible saving per edge, the exact
//! planner attains the brute-force optimal energy, and that optimum
//! equals `|E| · (E_max − ε·P_I)` saving-wise.

use spindown_sim::time::{SimDuration, SimTime};

use crate::model::{DataId, DiskId, Request};
use crate::sched::ExplicitPlacement;

/// An undirected graph given as an edge list over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct InputGraph {
    /// Number of vertices.
    pub vertices: u32,
    /// Edge list (unordered pairs, no self-loops).
    pub edges: Vec<(u32, u32)>,
}

/// The scheduling instance produced by the Theorem 3 reduction.
#[derive(Debug)]
pub struct ReducedInstance {
    /// The request stream (time-sorted, index = stream position).
    pub requests: Vec<Request>,
    /// Replica locations per data id.
    pub placement: ExplicitPlacement,
    /// For each edge: the stream index of its choice request `r_e`.
    pub edge_requests: Vec<u32>,
}

/// Performs the reduction. Edge times are spaced by `spacing`, which must
/// exceed the saving window of the power model the instance will be
/// evaluated under; the dummies arrive `epsilon` after `r_e` so the pair
/// ordering is strict (Eq. 4 requires `t_i < t_j`).
///
/// # Panics
///
/// Panics if the graph has a self-loop or an out-of-range endpoint.
pub fn reduce(graph: &InputGraph, spacing: SimDuration, epsilon: SimDuration) -> ReducedInstance {
    let mut locations: Vec<Vec<DiskId>> = Vec::new();
    let mut requests = Vec::new();
    let mut edge_requests = Vec::new();

    for (e, &(vi, vj)) in graph.edges.iter().enumerate() {
        assert!(vi != vj, "self-loop in input graph");
        assert!(
            vi < graph.vertices && vj < graph.vertices,
            "edge endpoint out of range"
        );
        let te = SimTime::ZERO + spacing * (e as u64 + 1);

        // r_e: on both endpoint disks.
        let data_e = DataId(locations.len() as u64);
        locations.push(vec![DiskId(vi), DiskId(vj)]);
        edge_requests.push(requests.len() as u32);
        requests.push(Request {
            index: requests.len() as u32,
            at: te,
            data: data_e,
            size: 4096,
        });

        // Dummies: pinned to one disk each, arriving epsilon later.
        for v in [vi, vj] {
            let data = DataId(locations.len() as u64);
            locations.push(vec![DiskId(v)]);
            requests.push(Request {
                index: requests.len() as u32,
                at: te + epsilon,
                data,
                size: 4096,
            });
        }
    }

    ReducedInstance {
        requests,
        placement: ExplicitPlacement::new(locations, graph.vertices),
        edge_requests,
    }
}

/// Reads an edge orientation out of a schedule of a reduced instance:
/// for each edge, which endpoint received `r_e`.
pub fn orientation(
    instance: &ReducedInstance,
    assignment: &crate::model::Assignment,
) -> Vec<DiskId> {
    instance
        .edge_requests
        .iter()
        .map(|&r| assignment.disk_of(r as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{brute_force_optimal, evaluate_offline};
    use crate::sched::{LocationProvider, MwisPlanner, MwisSolver};
    use spindown_disk::power::PowerParams;

    fn toy_graph() -> InputGraph {
        // Path 0-1-2 plus pendant 3 on vertex 0.
        InputGraph {
            vertices: 4,
            edges: vec![(0, 1), (1, 2), (0, 3)],
        }
    }

    fn build(graph: &InputGraph) -> ReducedInstance {
        reduce(
            graph,
            SimDuration::from_secs(100), // >> window (5 s for toy params)
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn instance_shape() {
        let inst = build(&toy_graph());
        assert_eq!(inst.requests.len(), 9, "3 requests per edge");
        assert_eq!(inst.edge_requests.len(), 3);
        assert!(inst.requests.windows(2).all(|w| w[0].at <= w[1].at));
        // r_e has two locations, dummies one.
        for &e in &inst.edge_requests {
            assert_eq!(
                inst.placement
                    .locations(inst.requests[e as usize].data)
                    .len(),
                2
            );
        }
    }

    #[test]
    fn conflict_graph_has_one_compatible_saving_per_edge() {
        let inst = build(&toy_graph());
        let planner = MwisPlanner {
            params: PowerParams::paper_example(),
            solver: MwisSolver::exact_default(),
            max_successors: 16,
        };
        let cg = planner.build_graph(&inst.requests, &inst.placement);
        // Per edge: one candidate pair per endpoint disk (r_e with that
        // endpoint's dummy), mutually conflicting (schedule-constraint on
        // r_e). Savings across edges never pair (spacing >> window).
        assert_eq!(cg.graph.len(), 2 * toy_graph().edges.len());
        let sel = planner.solve(&cg);
        assert_eq!(sel.len(), toy_graph().edges.len());
        assert!(cg.graph.is_independent_set(&sel));
    }

    #[test]
    fn exact_planner_matches_brute_force_on_reduced_instances() {
        let inst = build(&toy_graph());
        let params = PowerParams::paper_example();
        let planner = MwisPlanner {
            params: params.clone(),
            solver: MwisSolver::exact_default(),
            max_successors: 16,
        };
        let (assignment, _) = planner.plan(&inst.requests, &inst.placement);
        let planned = evaluate_offline(
            &inst.requests,
            &assignment,
            inst.placement.disks(),
            &params,
            None,
            None,
        );
        let (_, optimal) =
            brute_force_optimal(&inst.requests, &inst.placement, &params, 10_000).expect("small");
        assert!(
            (planned.energy_j - optimal).abs() < 1e-9,
            "planner {} vs optimal {}",
            planned.energy_j,
            optimal
        );
    }

    #[test]
    fn orientation_reads_choices() {
        let inst = build(&toy_graph());
        let params = PowerParams::paper_example();
        let planner = MwisPlanner {
            params,
            solver: MwisSolver::GwMin,
            max_successors: 16,
        };
        let (assignment, _) = planner.plan(&inst.requests, &inst.placement);
        let orient = orientation(&inst, &assignment);
        assert_eq!(orient.len(), 3);
        for (o, &(vi, vj)) in orient.iter().zip(&toy_graph().edges) {
            assert!(o.0 == vi || o.0 == vj, "edge oriented off its endpoints");
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        reduce(
            &InputGraph {
                vertices: 2,
                edges: vec![(1, 1)],
            },
            SimDuration::from_secs(10),
            SimDuration::from_millis(1),
        );
    }

    #[test]
    fn empty_graph_reduces_to_empty_stream() {
        let inst = reduce(
            &InputGraph {
                vertices: 3,
                edges: vec![],
            },
            SimDuration::from_secs(10),
            SimDuration::from_millis(1),
        );
        assert!(inst.requests.is_empty());
    }
}
