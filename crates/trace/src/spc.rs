//! SPC trace-format parser — the format of the UMass **Financial1** trace
//! the paper evaluates on (§4.1, \[23\]).
//!
//! Each line is a comma-separated record:
//!
//! ```text
//! ASU,LBA,Size,Opcode,Timestamp[,optional fields...]
//! ```
//!
//! * `ASU` — application storage unit (integer),
//! * `LBA` — logical block address (integer),
//! * `Size` — bytes (integer),
//! * `Opcode` — `r`/`R` read, `w`/`W` write,
//! * `Timestamp` — seconds since trace start (float).
//!
//! Data identity follows the paper: one data item per unique `(ASU, LBA)`
//! pair, encoded as `ASU << 48 | LBA`.

use std::io::BufRead;

use spindown_sim::time::SimTime;

use crate::record::{DataId, OpKind, Trace, TraceRecord};
use crate::stream::{ParsePolicy, StreamError};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub kind: SpcErrorKind,
}

/// Categories of SPC parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpcErrorKind {
    /// Fewer than five comma-separated fields.
    TooFewFields,
    /// A numeric field failed to parse.
    BadNumber(&'static str),
    /// The opcode field was not `r`/`R`/`w`/`W`.
    BadOpcode(String),
    /// The underlying reader failed (`line` is the line being read).
    Io(String),
}

impl std::fmt::Display for SpcErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpcErrorKind::TooFewFields => write!(f, "too few fields"),
            SpcErrorKind::BadNumber(field) => write!(f, "invalid number in field {field}"),
            SpcErrorKind::BadOpcode(op) => write!(f, "invalid opcode {op:?}"),
            SpcErrorKind::Io(msg) => write!(f, "read error: {msg}"),
        }
    }
}

impl std::fmt::Display for SpcParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for SpcParseError {}

impl From<SpcParseError> for StreamError {
    fn from(e: SpcParseError) -> Self {
        match e.kind {
            SpcErrorKind::Io(msg) => StreamError::Io(msg),
            kind => StreamError::Malformed {
                line: e.line,
                message: kind.to_string(),
            },
        }
    }
}

/// Encodes an `(asu, lba)` pair as the paper's data identity.
pub fn data_id(asu: u16, lba: u64) -> DataId {
    DataId(((asu as u64) << 48) | (lba & ((1u64 << 48) - 1)))
}

/// Parses SPC-format text into a [`Trace`]. Blank lines and lines starting
/// with `#` are skipped.
///
/// # Examples
///
/// ```
/// use spindown_trace::spc::parse;
///
/// let text = "0,20941264,8192,W,0.551706\n0,20939840,8192,W,0.554041\n1,3436288,15872,r,1.011732\n";
/// let trace = parse(text).unwrap();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.reads_only().len(), 1);
/// ```
pub fn parse(text: &str) -> Result<Trace, SpcParseError> {
    crate::stream::collect_trace(SpcStream::new(text.as_bytes(), ParsePolicy::Strict))
}

/// Incremental SPC parser over any [`BufRead`]: one line is held in
/// memory at a time, so arbitrarily large traces stream in constant
/// space. Yields records in *file* order (SPC exports are time-sorted).
///
/// CRLF line endings, surrounding whitespace, blank lines and `#`
/// comments are tolerated. Under [`ParsePolicy::Strict`] the first
/// malformed line aborts the stream; under [`ParsePolicy::Lenient`]
/// malformed lines are skipped and counted ([`SpcStream::skipped`]).
/// I/O failures always abort.
#[derive(Debug)]
pub struct SpcStream<R> {
    reader: R,
    buf: String,
    line_no: usize,
    policy: ParsePolicy,
    skipped: usize,
    done: bool,
}

impl<R: BufRead> SpcStream<R> {
    /// Streams SPC records from `reader` under `policy`.
    pub fn new(reader: R, policy: ParsePolicy) -> Self {
        SpcStream {
            reader,
            buf: String::new(),
            line_no: 0,
            policy,
            skipped: 0,
            done: false,
        }
    }

    /// Malformed lines skipped so far under [`ParsePolicy::Lenient`].
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

impl<R> crate::stream::SkipCount for SpcStream<R> {
    fn skipped_lines(&self) -> usize {
        self.skipped
    }
}

impl<R: BufRead> Iterator for SpcStream<R> {
    type Item = Result<TraceRecord, SpcParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(SpcParseError {
                        line: self.line_no + 1,
                        kind: SpcErrorKind::Io(e.to_string()),
                    }));
                }
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, self.line_no) {
                Ok(rec) => return Some(Ok(rec)),
                Err(e) => match self.policy {
                    ParsePolicy::Strict => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    ParsePolicy::Lenient => self.skipped += 1,
                },
            }
        }
        None
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<TraceRecord, SpcParseError> {
    let err = |kind| SpcParseError {
        line: line_no,
        kind,
    };
    let mut fields = line.split(',');
    let mut next = |name: &'static str| {
        fields
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err_field(line_no, name))
    };
    fn err_field(line: usize, _name: &'static str) -> SpcParseError {
        SpcParseError {
            line,
            kind: SpcErrorKind::TooFewFields,
        }
    }

    let asu: u16 = next("asu")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("asu")))?;
    let lba: u64 = next("lba")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("lba")))?;
    let size: u64 = next("size")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("size")))?;
    let op = match next("opcode")? {
        "r" | "R" => OpKind::Read,
        "w" | "W" => OpKind::Write,
        other => return Err(err(SpcErrorKind::BadOpcode(other.to_string()))),
    };
    let ts: f64 = next("timestamp")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("timestamp")))?;
    if !ts.is_finite() || ts < 0.0 {
        return Err(err(SpcErrorKind::BadNumber("timestamp")));
    }
    Ok(TraceRecord {
        at: SimTime::from_secs_f64(ts),
        data: data_id(asu, lba),
        size,
        op,
    })
}

/// Serializes a [`Trace`] back to SPC text (for round-trip tests and for
/// exporting synthetic traces in a standard format). The `(asu, lba)`
/// encoding of [`data_id`] is inverted.
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        let asu = (r.data.0 >> 48) as u16;
        let lba = r.data.0 & ((1u64 << 48) - 1);
        let op = match r.op {
            OpKind::Read => 'r',
            OpKind::Write => 'w',
        };
        out.push_str(&format!(
            "{},{},{},{},{:.6}\n",
            asu,
            lba,
            r.size,
            op,
            r.at.as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_financial1_style_lines() {
        let text = "\
0,20941264,8192,W,0.551706
0,20939840,8192,W,0.554041
1,3436288,15872,r,1.011732
# a comment

2,515200,3072,R,2.97794
";
        let t = parse(text).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.reads_only().len(), 2);
        assert_eq!(t.records()[0].size, 8192);
        assert_eq!(t.records()[0].op, OpKind::Write);
        assert_eq!(t.records()[2].data, data_id(1, 3436288));
        assert_eq!(t.records()[0].at, SimTime::from_secs_f64(0.551706));
    }

    #[test]
    fn distinct_asu_same_lba_are_distinct_data() {
        assert_ne!(data_id(0, 100), data_id(1, 100));
        assert_eq!(data_id(3, 100), data_id(3, 100));
    }

    #[test]
    fn rejects_short_lines() {
        let e = parse("1,2,3\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, SpcErrorKind::TooFewFields);
    }

    #[test]
    fn rejects_bad_numbers() {
        let e = parse("x,2,3,r,0.5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("asu"));
        let e = parse("1,2,3,r,notatime\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("timestamp"));
        let e = parse("1,2,3,r,-5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("timestamp"));
    }

    #[test]
    fn rejects_bad_opcode() {
        let e = parse("1,2,3,x,0.5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadOpcode("x".into()));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_lines_are_accurate() {
        let e = parse("1,2,3,r,0.5\n1,2,3,r,bad\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip() {
        let text = "0,1024,4096,r,0.500000\n7,2048,8192,w,1.250000\n";
        let t = parse(text).unwrap();
        assert_eq!(to_string(&t), text);
    }

    #[test]
    fn display_messages() {
        let e = parse("1,2,3,z,0.5\n").unwrap_err();
        assert!(e.to_string().contains("invalid opcode"));
        let e = parse("1\n").unwrap_err();
        assert!(e.to_string().contains("too few fields"));
    }

    #[test]
    fn whitespace_tolerant() {
        let t = parse(" 1 , 2 , 3 , r , 0.5 \n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn crlf_line_endings_tolerated() {
        let t = parse("1,2,3,r,0.5\r\n# comment\r\n\r\n1,4,3,w,0.6\r\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].at, SimTime::from_secs_f64(0.5));
    }

    #[test]
    fn stream_matches_batch_parse() {
        let text = "0,20941264,8192,W,0.551706\n# c\n1,3436288,15872,r,1.011732\n";
        let batch = parse(text).unwrap();
        let streamed: Vec<_> = SpcStream::new(text.as_bytes(), ParsePolicy::Strict)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed, batch.records());
    }

    #[test]
    fn lenient_skips_and_counts_malformed_lines() {
        let text = "1,2,3,r,0.5\nbroken line\n1,2,3,x,0.6\n1,4,3,w,0.7\n";
        let mut s = SpcStream::new(text.as_bytes(), ParsePolicy::Lenient);
        let recs: Vec<_> = (&mut s).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(s.skipped(), 2);
    }

    #[test]
    fn strict_stream_fuses_after_first_error() {
        let text = "broken\n1,2,3,r,0.5\n";
        let mut s = SpcStream::new(text.as_bytes(), ParsePolicy::Strict);
        assert!(s.next().unwrap().is_err());
        assert!(s.next().is_none());
    }

    #[test]
    fn io_failures_surface_as_io_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let reader = std::io::BufReader::new(FailingReader);
        let e = SpcStream::new(reader, ParsePolicy::Lenient)
            .next()
            .unwrap()
            .unwrap_err();
        assert!(matches!(e.kind, SpcErrorKind::Io(_)));
        assert!(e.to_string().contains("disk on fire"));
    }
}
