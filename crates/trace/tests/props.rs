//! Deterministic property checks for the trace substrate: parser
//! round-trips on pseudo-random records and structural invariants of the
//! generators (seeded `spindown_sim` RNG, identical cases every run).

use spindown_sim::rng::SimRng;
use spindown_sim::time::SimTime;
use spindown_trace::record::{OpKind, Trace, TraceRecord};
use spindown_trace::synth::{CelloLike, FinancialLike, TraceGenerator};
use spindown_trace::{spc, srt};

/// Pseudo-random trace records with ids that fit both wire formats
/// (16-bit device, 48-bit address).
fn random_records(rng: &mut SimRng) -> Vec<TraceRecord> {
    (0..rng.index(100))
        .map(|_| TraceRecord {
            at: SimTime::from_micros(rng.next_below(1_000_000_000)),
            data: spc::data_id(rng.next_below(100) as u16, rng.next_below(1u64 << 40)),
            size: 1 + rng.next_below(10_000_000 - 1),
            op: if rng.chance(0.5) {
                OpKind::Write
            } else {
                OpKind::Read
            },
        })
        .collect()
}

/// SPC serialization parses back to the identical trace.
#[test]
fn spc_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x71ace1);
    for _ in 0..64 {
        let trace = Trace::from_records(random_records(&mut rng));
        let text = spc::to_string(&trace);
        let parsed = spc::parse(&text).expect("own output must parse");
        assert_eq!(parsed.records(), trace.records());
    }
}

/// SRT serialization parses back to the identical trace.
#[test]
fn srt_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x71ace2);
    for _ in 0..64 {
        let trace = Trace::from_records(random_records(&mut rng));
        let text = srt::to_string(&trace);
        let parsed = srt::parse(&text).expect("own output must parse");
        assert_eq!(parsed.records(), trace.records());
    }
}

/// Trace construction invariants: sorted, rebasing anchors at zero,
/// densification preserves access patterns.
#[test]
fn trace_transforms_preserve_structure() {
    let mut rng = SimRng::seed_from_u64(0x71ace3);
    for _ in 0..64 {
        let trace = Trace::from_records(random_records(&mut rng));
        assert!(trace.records().windows(2).all(|w| w[0].at <= w[1].at));

        let rebased = trace.rebased();
        assert_eq!(rebased.len(), trace.len());
        if !rebased.is_empty() {
            assert_eq!(rebased.start(), Some(SimTime::ZERO));
            assert_eq!(rebased.duration(), trace.duration());
        }

        let dense = trace.densified();
        assert_eq!(dense.unique_data(), trace.unique_data());
        assert!(dense.data_space() as usize == dense.unique_data());
        // Same-data relations are preserved.
        for (a, b) in trace.records().iter().zip(dense.records()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.size, b.size);
        }
        for i in 0..trace.len() {
            for j in (i + 1)..trace.len().min(i + 10) {
                let same_before = trace.records()[i].data == trace.records()[j].data;
                let same_after = dense.records()[i].data == dense.records()[j].data;
                assert_eq!(same_before, same_after);
            }
        }
    }
}

/// reads_only + the write complement partition the trace.
#[test]
fn read_write_split_partitions() {
    let mut rng = SimRng::seed_from_u64(0x71ace4);
    for _ in 0..64 {
        let trace = Trace::from_records(random_records(&mut rng));
        let reads = trace.reads_only();
        let writes = trace.len() - reads.len();
        let actual_writes = trace
            .records()
            .iter()
            .filter(|r| r.op == OpKind::Write)
            .count();
        assert_eq!(writes, actual_writes);
    }
}

/// Generators honor their request count and stay time-sorted for any
/// modest parameterization.
#[test]
fn generators_hold_structural_invariants() {
    let mut rng = SimRng::seed_from_u64(0x71ace5);
    for _ in 0..24 {
        let n = 1 + rng.index(1_999);
        let items = 1 + rng.index(999);
        let z = rng.next_f64() * 1.5;
        let seed = rng.next_below(100);
        let cello = CelloLike {
            requests: n,
            data_items: items,
            popularity_z: z,
            ..CelloLike::default()
        }
        .generate(seed);
        assert_eq!(cello.len(), n);
        assert!(cello.records().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(cello.unique_data() <= items);

        let fin = FinancialLike {
            requests: n,
            data_items: items,
            popularity_z: z,
            ..FinancialLike::default()
        }
        .generate(seed);
        assert_eq!(fin.len(), n);
        assert!(fin.records().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
