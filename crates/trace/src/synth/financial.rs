//! Financial1-like synthetic trace: smooth OLTP arrivals + hot-spot
//! popularity.
//!
//! The real Financial1 trace (UMass, OLTP at a financial institution,
//! paper §4.1) differs from Cello mainly in its *lower* arrival
//! burstiness — the paper's only cross-trace observation is that mean
//! response times drop from ~1 s (Cello) to ~300 ms (Financial1) because
//! inter-arrival variation is smaller (§A.4). This generator therefore
//! uses a Poisson arrival process (inter-arrival CV = 1) with the same
//! Zipf-style popularity skew and smaller OLTP-sized blocks.

use spindown_sim::rng::SimRng;

use crate::record::{OpKind, Trace, TraceRecord};
use crate::synth::arrivals::poisson;
use crate::synth::popularity::ZipfPopularity;
use crate::synth::TraceGenerator;

/// Builder for Financial1-like traces.
///
/// # Examples
///
/// ```
/// use spindown_trace::synth::{FinancialLike, TraceGenerator};
///
/// let trace = FinancialLike { requests: 1000, ..FinancialLike::default() }.generate(1);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct FinancialLike {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct data items.
    pub data_items: usize,
    /// Zipf exponent of block popularity.
    pub popularity_z: f64,
    /// Mean arrival rate, requests per second.
    pub rate: f64,
    /// Block size, bytes (OLTP pages are small).
    pub block_size: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
}

impl Default for FinancialLike {
    fn default() -> Self {
        FinancialLike {
            requests: 70_000,
            data_items: 30_000,
            popularity_z: 1.0,
            rate: 30.0,
            block_size: 8 * 1024,
            write_fraction: 0.0,
        }
    }
}

impl FinancialLike {
    /// Lazy equivalent of [`TraceGenerator::generate`]: yields the same
    /// records in the same (time-sorted) order without materializing a
    /// [`Trace`], in O(data_items) memory.
    ///
    /// `generate` draws all `n` Poisson inter-arrivals *before* the
    /// per-record popularity/op draws; to replay the identical rng
    /// sequence lazily, the arrival draws come from a clone of the rng
    /// and the body rng is fast-forwarded past them at construction.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn stream(&self, seed: u64) -> FinancialStream {
        assert!(self.rate > 0.0, "arrival rate must be positive");
        let mut rng = SimRng::seed_from_u64(seed ^ 0xF17A);
        let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
            .expect("valid popularity parameters");
        let arrival_rng = rng.clone();
        for _ in 0..self.requests {
            rng.next_u64();
        }
        FinancialStream {
            arrival_rng,
            rng,
            pop,
            t: 0.0,
            rate: self.rate,
            block_size: self.block_size,
            write_fraction: self.write_fraction,
            remaining: self.requests,
        }
    }
}

/// Lazy record stream for [`FinancialLike`] — see
/// [`FinancialLike::stream`]. Differential tests pin it bit-identical to
/// the batch generator.
#[derive(Debug)]
pub struct FinancialStream {
    arrival_rng: SimRng,
    rng: SimRng,
    pop: ZipfPopularity,
    t: f64,
    rate: f64,
    block_size: u64,
    write_fraction: f64,
    remaining: usize,
}

impl Iterator for FinancialStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += self.arrival_rng.exponential(self.rate);
        Some(TraceRecord {
            at: spindown_sim::time::SimTime::from_secs_f64(self.t),
            data: self.pop.sample(&mut self.rng),
            size: self.block_size,
            op: if self.rng.chance(self.write_fraction) {
                OpKind::Write
            } else {
                OpKind::Read
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl TraceGenerator for FinancialLike {
    fn generate(&self, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xF17A);
        let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
            .expect("valid popularity parameters");
        let times = poisson(&mut rng, self.rate, self.requests);
        let records = times
            .into_iter()
            .map(|at| TraceRecord {
                at,
                data: pop.sample(&mut rng),
                size: self.block_size,
                op: if rng.chance(self.write_fraction) {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
            })
            .collect();
        Trace::from_records(records)
    }

    fn name(&self) -> &'static str {
        "financial-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FinancialLike {
        FinancialLike {
            requests: 5_000,
            data_items: 2_000,
            ..FinancialLike::default()
        }
    }

    #[test]
    fn generates_requested_count() {
        let t = small().generate(1);
        assert_eq!(t.len(), 5_000);
        assert!(t.records().iter().all(|r| r.op == OpKind::Read));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small().generate(4).records(), small().generate(4).records());
    }

    #[test]
    fn rate_is_respected() {
        let t = FinancialLike {
            requests: 30_000,
            rate: 50.0,
            ..small()
        }
        .generate(2);
        let span = t.duration().as_secs_f64();
        let rate = 30_000.0 / span;
        assert!((40.0..60.0).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn smoother_than_cello() {
        use crate::synth::CelloLike;
        let fin = FinancialLike {
            requests: 30_000,
            ..FinancialLike::default()
        }
        .generate(11);
        let cel = CelloLike {
            requests: 30_000,
            ..CelloLike::default()
        }
        .generate(11);
        let cv = |t: &Trace| {
            let gaps: Vec<f64> = t
                .records()
                .windows(2)
                .map(|w| w[1].at.as_secs_f64() - w[0].at.as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&fin) < cv(&cel),
            "financial CV {} must be below cello CV {}",
            cv(&fin),
            cv(&cel)
        );
    }

    #[test]
    fn default_scale_matches_paper() {
        let g = FinancialLike::default();
        assert_eq!(g.requests, 70_000);
        assert_eq!(g.data_items, 30_000);
        assert_eq!(g.name(), "financial-like");
    }

    /// The lazy stream is bit-identical to the batch oracle, including
    /// with writes in play (each record costs one extra `chance` draw).
    #[test]
    fn stream_matches_generate() {
        for (seed, wf) in [(4u64, 0.0), (9, 0.3)] {
            let gen = FinancialLike {
                write_fraction: wf,
                ..small()
            };
            let batch = gen.generate(seed);
            let streamed: Vec<TraceRecord> = gen.stream(seed).collect();
            assert_eq!(streamed, batch.records());
        }
    }
}
