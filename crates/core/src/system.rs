//! The event-driven storage-system simulator (paper Fig. 1): request
//! stream → scheduler → per-disk queues → disk state machines → power
//! manager, with full energy and response-time accounting.
//!
//! This is the online/batch counterpart of the analytic
//! [`crate::offline`] evaluator, playing the role OMNeT++ + DiskSim play
//! in the paper's experiments.
//!
//! Arrivals are *pulled* from a [`RequestSource`] one at a time
//! ([`run_system_streamed`]), so the event queue only ever holds
//! in-flight disk events — a multi-GB trace streams through in constant
//! memory. [`run_system`] wraps a `&[Request]` slice as a source for
//! in-memory callers and is the differential oracle for the streaming
//! path (both run the identical loop, so metrics are bit-identical by
//! construction; tests pin it anyway).
//!
//! The loop body itself lives in [`IslandEngine`], a push-based engine
//! whose disks, event queue, in-flight accounting and histogram are all
//! local to one **island** (a connected component of the replica-sharing
//! relation, [`crate::placement::IslandPartition`]). The serial entry
//! points drive a single engine over every disk;
//! [`run_system_streamed_with_jobs`] runs one engine per island across a
//! worker pool and merges the per-island metrics exactly
//! ([`crate::metrics::merge_islands`]) — bit-identical to the serial
//! oracle, as pinned by `tests/island_determinism.rs`.

use std::collections::HashMap;

use spindown_disk::disk::{Directive, Disk, DiskEvent, DiskRequest};
use spindown_disk::mechanics::{DiskGeometry, Mechanics};
use spindown_disk::policy::{
    AdaptiveThreshold, AlwaysOn, FixedThreshold, IdlePolicy, QuantileThreshold, StormDamper,
};
use spindown_disk::power::PowerParams;
use spindown_disk::queue::QueueDiscipline;
use spindown_disk::state::DiskPowerState;
use spindown_sim::event::EventQueue;
use spindown_sim::rng::{SimRng, SplitMix64};
use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::{SimDuration, SimTime};
use spindown_trace::split::StreamSplitter;

use crate::cost::DiskStatus;
use crate::metrics::{DiskSummary, IslandPart, RunMetrics};
use crate::model::{DiskId, Request};
use crate::placement::IslandPartition;
use crate::saving::SavingModel;
use crate::sched::{LocationProvider, ScheduleMode, Scheduler, SystemView};

/// Which power-management policy every disk runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Never spin down (the normalization baseline). Disks start idle.
    AlwaysOn,
    /// 2CPM with threshold = breakeven time (the paper's configuration).
    /// Disks start in standby (§2.3).
    Breakeven,
    /// 2CPM with an explicit threshold.
    FixedTimeout(SimDuration),
    /// Adaptive threshold (ablation; see
    /// [`spindown_disk::policy::AdaptiveThreshold`]).
    Adaptive,
    /// Predictive quantile threshold with spin-up-storm damping (see
    /// [`spindown_disk::policy::QuantileThreshold`]).
    Quantile,
}

/// Initial power state for a fleet running `policy`: always-on disks
/// start spinning (they never transition), everything else starts in
/// standby (paper §2.3). Single source of truth for both the build path
/// ([`build_disk`]) and the engine's status placeholder, so new policy
/// kinds cannot drift between the two.
pub fn initial_state(policy: &PolicyKind) -> DiskPowerState {
    match policy {
        PolicyKind::AlwaysOn => DiskPowerState::Idle,
        _ => DiskPowerState::Standby,
    }
}

/// A mid-run disk failure (replica loss): from `at` onward disk `disk`
/// accepts no new requests. Requests whose scheduler choice lands on a
/// failed disk are rerouted to the first surviving replica in placement
/// order; if every replica of a data item has failed, the request is
/// dropped (counted as an arrival, never serviced). Work already queued
/// on the disk before `at` still completes — the model is "stop sending
/// I/O", not amnesia.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFailure {
    /// Global disk index.
    pub disk: u32,
    /// Failure time.
    pub at: SimTime,
}

/// Static configuration of a simulated storage system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of disks (the paper uses 180).
    pub disks: u32,
    /// Power model of every disk.
    pub power: PowerParams,
    /// Mechanical model of every disk.
    pub geometry: DiskGeometry,
    /// Power-management policy.
    pub policy: PolicyKind,
    /// Per-disk request-queue discipline (FCFS in the paper).
    pub discipline: QueueDiscipline,
    /// When set, sample the system's total rate-power draw at this
    /// interval into [`RunMetrics::power_timeline`].
    pub power_sample: Option<SimDuration>,
    /// Per-disk [`PowerParams`] overrides for heterogeneous fleets:
    /// `(disk, params)` pairs consulted by
    /// [`SystemConfig::effective_power`]. Disks without an entry use
    /// [`SystemConfig::power`]. Overrides shape each disk's state
    /// machine, policy thresholds, energy meter and the always-on
    /// normalization baseline; the schedulers' cost model and the saving
    /// window keep the fleet-wide baseline `power` (see DESIGN.md §14).
    pub power_overrides: Vec<(u32, PowerParams)>,
    /// Mid-run disk failures honored by the engines at dispatch time.
    pub failures: Vec<DiskFailure>,
    /// Seed for all stochastic components (mechanics rotation phases).
    pub seed: u64,
}

impl SystemConfig {
    /// The power model governing disk `disk`: its override if one is
    /// configured (first match wins), else the fleet baseline. Linear
    /// scan — called at build/merge time only, never on the hot path.
    pub fn effective_power(&self, disk: u32) -> &PowerParams {
        self.power_overrides
            .iter()
            .find(|(d, _)| *d == disk)
            .map(|(_, p)| p)
            .unwrap_or(&self.power)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            disks: 180,
            power: PowerParams::barracuda(),
            geometry: DiskGeometry::cheetah_15k5(),
            policy: PolicyKind::Breakeven,
            discipline: QueueDiscipline::Fcfs,
            power_sample: None,
            power_overrides: Vec::new(),
            failures: Vec::new(),
            seed: 0,
        }
    }
}

/// An engine-local event. `Disk` carries the *island-local* disk index.
enum Ev {
    BatchTick,
    Sample,
    Disk(u32, DiskEvent),
}

/// Failure surfaced by a [`RequestSource`]: an upstream I/O or parse
/// error, or an out-of-order arrival. Carries a human-readable message
/// (the underlying errors are not `Clone`/`PartialEq`, so the source is
/// rendered at the boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError(pub String);

impl SourceError {
    /// Creates an error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError(message.into())
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SourceError {}

/// A pull-based, fallible stream of arrivals for
/// [`run_system_streamed`].
///
/// Contract: requests must come out in non-decreasing `at` order (the
/// engine verifies incrementally and fails fast), and `index` must be
/// unique among requests simultaneously in flight (it keys completion
/// accounting). Any `Iterator<Item = Result<Request, SourceError>>`
/// is a source via the blanket impl.
pub trait RequestSource {
    /// Pulls the next arrival; `None` means the stream is exhausted.
    fn next_request(&mut self) -> Option<Result<Request, SourceError>>;

    /// Pulls up to `max` arrivals, appending them to `out`. Returns a
    /// source error if one occurs mid-fill — arrivals pulled before the
    /// failure stay in `out` (they are valid and the engines consume them
    /// before the error aborts the run, exactly as per-record ingestion
    /// did). An exhausted source leaves `out` short, possibly unchanged.
    ///
    /// Engines ingest through this method so the virtual-dispatch cost is
    /// paid once per block instead of once per record; the default simply
    /// loops `next_request`, which the blanket iterator impl monomorphizes
    /// into a tight concrete loop.
    fn fill_block(&mut self, out: &mut Vec<Request>, max: usize) -> Option<SourceError> {
        while out.len() < max {
            match self.next_request() {
                None => return None,
                Some(Err(e)) => return Some(e),
                Some(Ok(r)) => out.push(r),
            }
        }
        None
    }
}

impl<I> RequestSource for I
where
    I: Iterator<Item = Result<Request, SourceError>>,
{
    fn next_request(&mut self) -> Option<Result<Request, SourceError>> {
        self.next()
    }
}

/// Records per ingestion block: how many arrivals the engines pull from a
/// [`RequestSource`] per virtual call, and the decoded-record block reused
/// between the parser and the event loop.
const INGEST_BLOCK: usize = 256;

/// Scans `block` for the first arrival-time regression, continuing from
/// `prev` (the time of the last previously accepted arrival; updated to
/// the last accepted time). Returns the length of the valid prefix and,
/// when a regression exists, the exact error per-record ingestion
/// historically produced — one ordering check per block instead of one
/// per pulled record.
fn validate_order(block: &[Request], prev: &mut Option<SimTime>) -> (usize, Option<SourceError>) {
    let mut p = *prev;
    for (i, r) in block.iter().enumerate() {
        if p.is_some_and(|t| r.at < t) {
            *prev = p;
            return (
                i,
                Some(SourceError::new(format!(
                    "requests must be sorted by time (request {} at {:?} regressed)",
                    r.index, r.at
                ))),
            );
        }
        p = Some(r.at);
    }
    *prev = p;
    (block.len(), None)
}

/// Dispatched-but-uncompleted accounting: maps a completion back to its
/// arrival time. The production representation is a per-disk slab keyed
/// by dispatch slot (the slot doubles as the disk-request wire id), so
/// the hot path never hashes; the `Hash` variant keeps the historical
/// `HashMap` keyed by global request index as a differential oracle.
enum InFlight {
    Slab {
        /// `slots[disk][slot]` = arrival time of the request occupying
        /// that dispatch slot, `None` when free.
        slots: Vec<Vec<Option<SimTime>>>,
        /// Per-disk free-slot stacks (LIFO, deterministic).
        free: Vec<Vec<u32>>,
        len: usize,
    },
    Hash(HashMap<u64, SimTime>),
}

impl InFlight {
    fn slab(disks: usize) -> Self {
        InFlight::Slab {
            slots: vec![Vec::new(); disks],
            free: vec![Vec::new(); disks],
            len: 0,
        }
    }

    fn hash() -> Self {
        InFlight::Hash(HashMap::new())
    }

    /// Registers a dispatch on local disk `disk`; returns the wire id to
    /// stamp on the [`DiskRequest`].
    fn insert(&mut self, disk: usize, req: &Request) -> u64 {
        match self {
            InFlight::Slab { slots, free, len } => {
                *len += 1;
                match free[disk].pop() {
                    Some(slot) => {
                        let cell = &mut slots[disk][slot as usize];
                        debug_assert!(cell.is_none(), "free slot {slot} occupied");
                        *cell = Some(req.at);
                        slot as u64
                    }
                    None => {
                        slots[disk].push(Some(req.at));
                        (slots[disk].len() - 1) as u64
                    }
                }
            }
            InFlight::Hash(map) => {
                let prev = map.insert(req.index as u64, req.at);
                debug_assert!(prev.is_none(), "request id {} already in flight", req.index);
                req.index as u64
            }
        }
    }

    /// Resolves a completion on local disk `disk` with wire id `id`,
    /// returning the request's arrival time.
    fn remove(&mut self, disk: usize, id: u64) -> SimTime {
        match self {
            InFlight::Slab { slots, free, len } => {
                let at = slots[disk][id as usize]
                    .take()
                    .expect("completed request must be in flight");
                free[disk].push(id as u32);
                *len -= 1;
                at
            }
            InFlight::Hash(map) => map
                .remove(&id)
                .expect("completed request must be in flight"),
        }
    }

    fn len(&self) -> usize {
        match self {
            InFlight::Slab { len, .. } => *len,
            InFlight::Hash(map) => map.len(),
        }
    }
}

/// Engine-side idle-timer coalescing state for one local disk.
///
/// A large fraction of disk events are idle timers, and under bursty
/// arrivals nearly all of them are stale by the time they fire (the disk
/// re-activated and bumped its token). Rather than scheduling one queue
/// entry per arm, the engine keeps `desired` as the single source of
/// truth and maintains one invariant: **whenever a timer is armed, some
/// queued entry fires at or before its deadline.** A re-arm overwrites
/// `desired` and only touches the wheel when the new deadline is earlier
/// than every entry already queued (predictive policies shrink timeouts,
/// so deadlines move backward as well as forward); an entry that fires
/// before the desired deadline re-schedules itself at that deadline
/// instead of touching the disk. Delivery happens exactly at the desired
/// deadline, and the disk still validates the token, so the scheme is
/// behaviour-preserving — it only removes wheel traffic.
#[derive(Debug, Clone, Copy, Default)]
struct IdleTimer {
    /// Latest armed `(deadline, token)`; `None` when nothing is armed
    /// (or the armed timer was already delivered).
    desired: Option<(SimTime, u64)>,
    /// Earliest queued `IdleTimeout` entry for this disk, `None` when
    /// none is known to be pending. Later stale entries may linger in
    /// the queue after a fire resets this; they deliver nothing (the
    /// deadline check filters them) and at worst cost one extra
    /// re-schedule each.
    earliest_queued: Option<SimTime>,
}

/// Per-disk RNGs, forked from the root seed in global disk order. The
/// fork sequence must be global (forking mutates the root), so island
/// engines receive their disks' pre-forked streams from this table and
/// end up with exactly the serial engine's per-disk randomness.
fn disk_rngs(config: &SystemConfig) -> Vec<SimRng> {
    let mut root = SimRng::seed_from_u64(config.seed ^ 0x5751);
    (0..config.disks).map(|d| root.fork(d as u64)).collect()
}

/// Confidence knob for [`PolicyKind::Quantile`]: spin down early only
/// when at least this fraction of idle periods that survived the
/// candidate threshold also outlast breakeven.
const QUANTILE_CONFIDENCE: f64 = 0.8;

/// Builds global disk `disk` of the fleet. Each disk gets its
/// *effective* power model ([`SystemConfig::effective_power`]) and a
/// fresh policy instance — policy state is strictly per-disk, which is
/// what keeps adaptive/quantile fleets island-parallel-safe: a disk's
/// learned state depends only on its own request history, identical
/// under any island-to-worker assignment.
fn build_disk(config: &SystemConfig, disk: u32, rng: SimRng) -> Disk {
    let params = config.effective_power(disk);
    let policy: Box<dyn IdlePolicy> = match &config.policy {
        PolicyKind::AlwaysOn => Box::new(AlwaysOn),
        PolicyKind::Breakeven => Box::new(FixedThreshold::breakeven(params)),
        PolicyKind::FixedTimeout(t) => Box::new(FixedThreshold::new(*t)),
        PolicyKind::Adaptive => Box::new(AdaptiveThreshold::new(
            0.25,
            1.0,
            SimDuration::from_secs(1),
            params.breakeven() * 4,
        )),
        PolicyKind::Quantile => Box::new(
            QuantileThreshold::new(params, QUANTILE_CONFIDENCE).with_damper(
                StormDamper::for_disk(params.breakeven() * 4, disk, config.disks),
            ),
        ),
    };
    Disk::with_discipline(
        params.clone(),
        Mechanics::new(config.geometry.clone(), rng),
        policy,
        initial_state(&config.policy),
        SimTime::ZERO,
        config.discipline,
    )
}

/// One island's event loop: the extracted body of the historical
/// `run_system_streamed`, reshaped push-based so a router can feed many
/// engines from one sorted stream. Disks, event queue, in-flight
/// accounting, batch buffer and response histogram are all island-local;
/// the only shared inputs are the (read-only) placement and power model.
///
/// Call [`IslandEngine::offer`] with the island's arrivals in
/// non-decreasing time order, then [`IslandEngine::into_finished`] to
/// drain remaining events and extract the partial metrics.
struct IslandEngine<'a, S: Scheduler> {
    power: &'a PowerParams,
    placement: &'a dyn LocationProvider,
    scheduler: S,
    name: &'static str,
    batch_interval: Option<SimDuration>,
    power_sample: Option<SimDuration>,
    /// Island disks, local order == ascending global id order.
    disks: Vec<Disk>,
    /// Local slot → global disk id.
    global_ids: Vec<DiskId>,
    /// Global disk index → local slot (`u32::MAX` for foreign disks).
    local_of: Vec<u32>,
    queue: EventQueue<Ev>,
    batch_buffer: Vec<Request>,
    /// Reused scratch for scheduler choices — online dispatch allocates
    /// nothing per arrival.
    choices: Vec<DiskId>,
    in_flight: InFlight,
    /// Per-local-disk idle-timer coalescers (see [`IdleTimer`]).
    idle_timers: Vec<IdleTimer>,
    arrivals: usize,
    trace_end: SimTime,
    last_event: SimTime,
    response: LatencyHistogram,
    requests_per_disk: Vec<u64>,
    /// Reusable status snapshot, indexed by **global** disk id; only the
    /// island's own entries are ever refreshed (schedulers read statuses
    /// only for a request's replica locations, all of which are local).
    statuses: Vec<DiskStatus>,
    /// Failure time per **global** disk id (`None` = never fails). A
    /// pure function of the config, so rerouting decisions are identical
    /// under any island-to-worker assignment.
    failed_at: Vec<Option<SimTime>>,
    /// Flattened per-sample per-disk watt rows (local disk order).
    power_rows: Vec<f64>,
    sample_times: Vec<SimTime>,
    started: bool,
    peak_events: usize,
    peak_in_flight: usize,
}

/// A drained island, detached from its scheduler and placement borrows so
/// it can cross back to the merging thread.
struct FinishedIsland {
    disks: Vec<Disk>,
    global_ids: Vec<DiskId>,
    requests_per_disk: Vec<u64>,
    response: LatencyHistogram,
    arrivals: usize,
    trace_end: SimTime,
    last_event: SimTime,
    power_rows: Vec<f64>,
    sample_times: Vec<SimTime>,
    drained_watts: Vec<f64>,
    peak_events: usize,
    peak_in_flight: usize,
}

impl<'a, S: Scheduler> IslandEngine<'a, S> {
    /// Builds an engine over `global_ids` (ascending). `rngs` is the
    /// global per-disk fork table from [`disk_rngs`]. `use_hash` selects
    /// the `HashMap` in-flight oracle instead of the production slab.
    fn new(
        placement: &'a dyn LocationProvider,
        config: &'a SystemConfig,
        scheduler: S,
        global_ids: &[DiskId],
        rngs: &[SimRng],
        use_hash: bool,
    ) -> Self {
        let n_local = global_ids.len();
        let n_global = config.disks as usize;
        let disks: Vec<Disk> = global_ids
            .iter()
            .map(|gid| build_disk(config, gid.0, rngs[gid.index()].clone()))
            .collect();
        let mut local_of = vec![u32::MAX; n_global];
        for (l, gid) in global_ids.iter().enumerate() {
            local_of[gid.index()] = l as u32;
        }
        let mut failed_at = vec![None; n_global];
        for f in &config.failures {
            assert!(
                f.disk < config.disks,
                "failure references disk {} of a {}-disk fleet",
                f.disk,
                config.disks
            );
            let cell = &mut failed_at[f.disk as usize];
            *cell = Some(cell.map_or(f.at, |t: SimTime| t.min(f.at)));
        }
        let placeholder = DiskStatus {
            state: initial_state(&config.policy),
            last_request_at: None,
            load: 0,
        };
        let name = scheduler.name();
        let batch_interval = match scheduler.mode() {
            ScheduleMode::Online => None,
            ScheduleMode::Batch(interval) => Some(interval),
        };
        IslandEngine {
            power: &config.power,
            placement,
            scheduler,
            name,
            batch_interval,
            power_sample: config.power_sample,
            disks,
            global_ids: global_ids.to_vec(),
            local_of,
            // Only in-flight work lives here: per-disk pipeline events
            // plus at most one batch tick and one power sample — never
            // the trace itself.
            queue: EventQueue::with_capacity(n_local.saturating_mul(4) + 8),
            batch_buffer: Vec::new(),
            choices: Vec::new(),
            in_flight: if use_hash {
                InFlight::hash()
            } else {
                InFlight::slab(n_local)
            },
            idle_timers: vec![IdleTimer::default(); n_local],
            arrivals: 0,
            trace_end: SimTime::ZERO,
            last_event: SimTime::ZERO,
            response: LatencyHistogram::default(),
            requests_per_disk: vec![0; n_local],
            statuses: vec![placeholder; n_global],
            failed_at,
            power_rows: Vec::new(),
            sample_times: Vec::new(),
            started: false,
            peak_events: 0,
            peak_in_flight: 0,
        }
    }

    /// Schedules the initial batch tick and power sample. Deferred to the
    /// first arrival so an island that never receives one stays inert —
    /// exactly like the historical loop, which gated both on a non-empty
    /// stream.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(interval) = self.batch_interval {
            self.queue.schedule(SimTime::ZERO + interval, Ev::BatchTick);
        }
        if self.power_sample.is_some() {
            self.queue.schedule(SimTime::ZERO, Ev::Sample);
        }
        self.peak_events = self.peak_events.max(self.queue.len());
    }

    /// Feeds a block of arrivals (non-decreasing times, the island's own
    /// data only): one admission (`ensure_started`) per block, the
    /// per-arrival loop monomorphized inline. Events earlier than an
    /// arrival run first; at equal times the arrival runs first, matching
    /// the pre-scheduled ordering the materialized path historically
    /// used.
    fn offer_batch(&mut self, reqs: &[Request]) {
        if reqs.is_empty() {
            return;
        }
        self.ensure_started();
        for req in reqs {
            self.offer_one(*req);
        }
    }

    /// [`IslandEngine::offer`] minus the start check.
    fn offer_one(&mut self, req: Request) {
        while let Some(t) = self.queue.peek_time() {
            if t >= req.at {
                break;
            }
            self.step_event(true);
        }
        let now = req.at;
        self.last_event = self.last_event.max(now);
        self.trace_end = now;
        self.arrivals += 1;
        if self.batch_interval.is_some() {
            self.batch_buffer.push(req);
        } else {
            let singleton = [req];
            self.dispatch(&singleton, now);
        }
        self.update_peaks();
    }

    /// Pops and processes one event. `pending` is true while a further
    /// arrival exists for this island (it gates the batch-tick and
    /// power-sample chains, as the look-ahead arrival did historically).
    fn step_event(&mut self, pending: bool) {
        let ev = self.queue.pop().expect("step_event requires an event");
        let now = ev.at;
        self.last_event = now;
        match ev.payload {
            Ev::BatchTick => {
                if !self.batch_buffer.is_empty() {
                    let batch = std::mem::take(&mut self.batch_buffer);
                    self.dispatch(&batch, now);
                    self.batch_buffer = batch;
                    self.batch_buffer.clear();
                }
                if pending {
                    let interval = self.batch_interval.expect("tick implies batch mode");
                    self.queue.schedule(now + interval, Ev::BatchTick);
                }
            }
            Ev::Sample => {
                self.sample_times.push(now);
                for d in &self.disks {
                    self.power_rows.push(d.power_w());
                }
                // Keep sampling while real events remain (the only
                // pending sample is the one just popped, so a non-empty
                // queue or an unconsumed arrival means actual work is
                // still in flight).
                if !self.queue.is_empty() || pending {
                    let interval = self.power_sample.expect("sampling enabled");
                    self.queue.schedule(now + interval, Ev::Sample);
                }
            }
            Ev::Disk(d, event) => {
                // Idle timers route through the coalescer: deliver only
                // when this fire time IS the latest desired deadline,
                // otherwise chase the deadline forward (or drop, if
                // nothing is armed any more).
                let deliver = match event {
                    DiskEvent::IdleTimeout(_) => {
                        let timer = &mut self.idle_timers[d as usize];
                        // Entries fire in time order, so the firing entry
                        // is the earliest pending one; any survivors are
                        // later and unknown, so forget them (they fire as
                        // harmless no-ops).
                        timer.earliest_queued = None;
                        match timer.desired {
                            None => None,
                            Some((deadline, token)) => {
                                if now < deadline {
                                    timer.earliest_queued = Some(deadline);
                                    self.queue.schedule(
                                        deadline,
                                        Ev::Disk(d, DiskEvent::IdleTimeout(token)),
                                    );
                                    None
                                } else {
                                    // The invariant keeps an entry at or
                                    // before the deadline, so the first
                                    // fire at/after it is exactly at it.
                                    debug_assert_eq!(now, deadline, "timer fired late");
                                    timer.desired = None;
                                    Some(DiskEvent::IdleTimeout(token))
                                }
                            }
                        }
                    }
                    other => Some(other),
                };
                if let Some(event) = deliver {
                    let outcome = self.disks[d as usize].handle(now, event);
                    if let Some(done) = outcome.completed {
                        let arrival = self.in_flight.remove(d as usize, done.id);
                        self.response.record(now.saturating_since(arrival));
                    }
                    if let Some(dir) = outcome.directive {
                        self.schedule_directive(d, now, dir);
                    }
                }
            }
        }
        self.update_peaks();
    }

    /// Schedules a disk directive, routing idle timers through the
    /// per-disk coalescer: the wheel is touched only when no queued entry
    /// would fire by the new deadline.
    fn schedule_directive(&mut self, local: u32, now: SimTime, dir: Directive) {
        if let DiskEvent::IdleTimeout(token) = dir.event {
            let deadline = now + dir.after;
            let timer = &mut self.idle_timers[local as usize];
            timer.desired = Some((deadline, token));
            if timer.earliest_queued.is_none_or(|q| deadline < q) {
                timer.earliest_queued = Some(deadline);
                self.queue.schedule(deadline, Ev::Disk(local, dir.event));
            }
        } else {
            self.queue.schedule(now + dir.after, Ev::Disk(local, dir.event));
        }
    }

    /// Whether global disk `disk` has failed as of `now`.
    fn is_failed(&self, disk: DiskId, now: SimTime) -> bool {
        self.failed_at[disk.index()].is_some_and(|t| now >= t)
    }

    fn update_peaks(&mut self) {
        self.peak_events = self.peak_events.max(self.queue.len());
        self.peak_in_flight = self
            .peak_in_flight
            .max(self.in_flight.len() + self.batch_buffer.len());
    }

    /// Asks the scheduler to place `batch` and enqueues the results.
    fn dispatch(&mut self, batch: &[Request], now: SimTime) {
        // Refresh only the statuses the scheduler can actually read: the
        // replica locations of the batch's requests (every shipped
        // scheduler consults `view.status(d)` solely for disks in a
        // request's location list — the same contract island partitioning
        // already relies on). Refreshing the full island per dispatch made
        // admission O(island disks) per arrival; this is O(replicas).
        for req in batch {
            for gid in self.placement.locations(req.data) {
                let local = self.local_of[gid.index()];
                debug_assert!(
                    local != u32::MAX,
                    "request {} has replica on foreign disk {gid}",
                    req.index
                );
                let d = &self.disks[local as usize];
                self.statuses[gid.index()] = DiskStatus {
                    state: d.state(),
                    last_request_at: d.last_request_at(),
                    load: d.load(),
                };
            }
        }
        let view = SystemView {
            now,
            params: self.power,
            placement: self.placement,
            statuses: self.statuses.as_slice(),
        };
        let mut choices = std::mem::take(&mut self.choices);
        self.scheduler.assign_into(batch, &view, &mut choices);
        assert_eq!(
            choices.len(),
            batch.len(),
            "scheduler must place every request"
        );
        for (req, &disk_id) in batch.iter().zip(choices.iter()) {
            assert!(
                self.placement.locations(req.data).contains(&disk_id),
                "scheduler placed request {} off-placement ({disk_id})",
                req.index
            );
            // Failure rerouting: if the scheduler's choice has failed by
            // now, fall over to the first surviving replica in placement
            // order; if none survives, drop the request (it stays counted
            // as an arrival). Replicas never cross islands, so the
            // fallback disk is always local.
            let disk_id = if self.is_failed(disk_id, now) {
                match self
                    .placement
                    .locations(req.data)
                    .iter()
                    .copied()
                    .find(|d| !self.is_failed(*d, now))
                {
                    Some(d) => d,
                    None => continue,
                }
            } else {
                disk_id
            };
            let local = self.local_of[disk_id.index()];
            assert!(
                local != u32::MAX,
                "request {} routed to island without disk {disk_id}",
                req.index
            );
            let local = local as usize;
            self.requests_per_disk[local] += 1;
            let wire_id = self.in_flight.insert(local, req);
            let lba = lba_of(req.data.0, disk_id.0);
            let directive = self.disks[local].enqueue(
                now,
                DiskRequest {
                    id: wire_id,
                    lba,
                    size: req.size,
                },
            );
            if let Some(dir) = directive {
                self.schedule_directive(local as u32, now, dir);
            }
        }
        self.choices = choices;
    }

    /// Drains every remaining event and detaches the partial metrics.
    fn into_finished(mut self) -> FinishedIsland {
        while !self.queue.is_empty() {
            self.step_event(false);
        }
        let drained_watts = self.disks.iter().map(Disk::power_w).collect();
        FinishedIsland {
            disks: self.disks,
            global_ids: self.global_ids,
            requests_per_disk: self.requests_per_disk,
            response: self.response,
            arrivals: self.arrivals,
            trace_end: self.trace_end,
            last_event: self.last_event,
            power_rows: self.power_rows,
            sample_times: self.sample_times,
            drained_watts,
            peak_events: self.peak_events,
            peak_in_flight: self.peak_in_flight,
        }
    }
}

impl FinishedIsland {
    /// Summarizes the island at the *global* horizon. Valid past the
    /// island's own last event: disk states freeze once the local queue
    /// drains, and the meters extrapolate the open interval — exactly
    /// what the serial engine does for disks idle at the end of a run.
    fn finalize(self, horizon: SimTime) -> IslandPart {
        let per_disk: Vec<DiskSummary> = self
            .disks
            .iter()
            .enumerate()
            .map(|(i, d)| DiskSummary {
                energy_j: d.energy_j(horizon),
                state_fractions: d.meter().state_fractions(horizon),
                spinups: d.meter().spinups(),
                spindowns: d.meter().spindowns(),
                requests: self.requests_per_disk[i],
            })
            .collect();
        IslandPart {
            disk_ids: self.global_ids,
            per_disk,
            response: self.response,
            requests: self.arrivals,
            sample_times: self.sample_times.iter().map(|t| t.as_secs_f64()).collect(),
            power_rows: self.power_rows,
            drained_watts: self.drained_watts,
            peak_events: self.peak_events,
            peak_in_flight: self.peak_in_flight,
        }
    }
}

/// Computes the global horizon and merges finished islands into the final
/// metrics. The horizon is `max(last event, last request + saving
/// window)` — island maxima reproduce the serial engine's values exactly,
/// so runs under different schedulers are normalized over essentially the
/// same span.
fn merge_finished(
    scheduler: String,
    config: &SystemConfig,
    finished: Vec<FinishedIsland>,
    splitter_high_water: usize,
) -> RunMetrics {
    let model = SavingModel::new(&config.power);
    let last_event = finished
        .iter()
        .map(|f| f.last_event)
        .max()
        .unwrap_or(SimTime::ZERO);
    let trace_end = finished
        .iter()
        .map(|f| f.trace_end)
        .max()
        .unwrap_or(SimTime::ZERO);
    let horizon = last_event.max(trace_end + model.window());
    let horizon_s = horizon.as_secs_f64();
    // Always-on baseline: every disk spinning idle for the whole horizon,
    // summed per disk so heterogeneous fleets normalize correctly (a
    // homogeneous `disks × idle_w` shortcut undercounts or overcounts
    // whenever overrides are present).
    let always_on_j = (0..config.disks)
        .map(|d| config.effective_power(d).idle_w)
        .sum::<f64>()
        * horizon_s;
    let parts: Vec<IslandPart> = finished.into_iter().map(|f| f.finalize(horizon)).collect();
    crate::metrics::merge_islands(
        scheduler,
        config.disks,
        horizon_s,
        always_on_j,
        parts,
        splitter_high_water,
    )
}

/// Runs `scheduler` over `requests` (time-sorted) against `placement`,
/// returning the full metrics of the run.
///
/// Convenience wrapper over [`run_system_streamed`] for in-memory
/// request vectors; both paths execute the identical event loop, which
/// makes this the differential-test oracle for streamed ingestion.
///
/// The measurement horizon is `max(last event, last request + saving
/// window)`, so runs under different schedulers are normalized over
/// essentially the same span.
///
/// # Panics
///
/// Panics if `requests` is not sorted by time or a scheduler returns an
/// off-placement disk.
pub fn run_system(
    requests: &[Request],
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> RunMetrics {
    assert!(
        requests.windows(2).all(|w| w[0].at <= w[1].at),
        "requests must be sorted by time"
    );
    let mut source = requests.iter().map(|r| Ok::<Request, SourceError>(*r));
    run_system_streamed(&mut source, placement, scheduler, config)
        .expect("in-memory sorted slices cannot fail")
}

/// Runs `scheduler` over arrivals pulled lazily from `source`.
///
/// The event queue holds only in-flight work (disk pipeline events, one
/// batch tick, one power sample) plus the single look-ahead arrival, so
/// memory stays bounded by disk count and batch width — never by trace
/// length. Arrivals are interleaved with simulator events by time;
/// at equal times the arrival is processed first, matching the
/// pre-scheduled ordering the materialized path historically used
/// (arrivals were enqueued before any other event and the queue is
/// FIFO-stable at ties).
///
/// This is the **serial oracle**: one engine over every disk, whatever
/// the placement's island structure. [`run_system_streamed_with_jobs`]
/// is the island-parallel production path and is bit-identical to it.
///
/// # Errors
///
/// Returns the first [`SourceError`] the source yields, or an
/// out-of-order error if arrivals regress in time. Work already
/// dispatched is abandoned at that point — the partial metrics are not
/// returned.
///
/// # Panics
///
/// Panics if the scheduler returns an off-placement disk or the
/// placement disagrees with `config.disks`.
pub fn run_system_streamed(
    source: &mut dyn RequestSource,
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> Result<RunMetrics, SourceError> {
    run_single_engine(source, placement, scheduler, config, false)
}

/// [`run_system_streamed`] with the historical `HashMap` in-flight
/// accounting instead of the production per-disk slab. Retained solely as
/// the differential oracle for the slab (the wire ids on disk requests
/// differ; the simulation and metrics must not).
#[doc(hidden)]
pub fn run_system_streamed_hash_oracle(
    source: &mut dyn RequestSource,
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> Result<RunMetrics, SourceError> {
    run_single_engine(source, placement, scheduler, config, true)
}

fn run_single_engine(
    source: &mut dyn RequestSource,
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
    use_hash: bool,
) -> Result<RunMetrics, SourceError> {
    assert_eq!(
        placement.disks(),
        config.disks,
        "placement and system disagree on disk count"
    );
    let rngs = disk_rngs(config);
    let all: Vec<DiskId> = (0..config.disks).map(DiskId).collect();
    let mut engine = IslandEngine::new(placement, config, scheduler, &all, &rngs, use_hash);
    // Decoded-record block reused between the source (parser) and the
    // event loop: one virtual fill and one ordering scan per block, no
    // per-record iterator plumbing.
    let mut block: Vec<Request> = Vec::with_capacity(INGEST_BLOCK);
    let mut prev: Option<SimTime> = None;
    loop {
        block.clear();
        let src_err = source.fill_block(&mut block, INGEST_BLOCK);
        let (valid, order_err) = validate_order(&block, &mut prev);
        // Arrivals before a failure are real; feed them before aborting —
        // exactly where per-record ingestion stopped.
        engine.offer_batch(&block[..valid]);
        if let Some(e) = order_err {
            return Err(e);
        }
        if let Some(e) = src_err {
            return Err(e);
        }
        if valid < INGEST_BLOCK {
            break;
        }
    }
    let name = engine.name;
    Ok(merge_finished(
        name.into(),
        config,
        vec![engine.into_finished()],
        0,
    ))
}

/// Island-parallel replay: one event loop per island of the placement's
/// replica-sharing graph, fed from `source` through a bounded
/// [`StreamSplitter`], merged exactly into one [`RunMetrics`].
///
/// Schedulers are created per island via `factory`, so each island's
/// scheduler sees exactly the requests a serial scheduler would have seen
/// for those disks (scheduler state never crosses islands — replica
/// locality guarantees the serial scheduler's state is island-separable
/// for every shipped scheduler; `RandomScheduler` hashes per request for
/// the same reason).
///
/// The result is **bit-identical** to [`run_system_streamed`] — same
/// floats, same histogram buckets, same `power_timeline` — for any
/// `jobs`, except the operational fields
/// [`RunMetrics::peak_events`] / [`RunMetrics::peak_in_flight`]
/// (per-island maxima instead of one global queue's peak) and
/// [`RunMetrics::splitter_high_water`] (timing-dependent diagnostic).
/// With a single island it *is* the serial engine, operational fields
/// included.
///
/// `jobs` is the worker cap (`0`/`1` = no threads); islands are sharded
/// contiguously across at most `min(jobs, islands)` workers.
///
/// # Errors
///
/// Exactly as [`run_system_streamed`]: the first upstream or ordering
/// error aborts the run (in-flight islands are abandoned).
pub fn run_system_streamed_with_jobs(
    source: &mut (dyn RequestSource + Send),
    placement: &(dyn LocationProvider + Sync),
    factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
    config: &SystemConfig,
    jobs: usize,
) -> Result<RunMetrics, SourceError> {
    assert_eq!(
        placement.disks(),
        config.disks,
        "placement and system disagree on disk count"
    );
    let partition = IslandPartition::from_provider(placement);
    if partition.is_single() {
        // Degenerate fallback: replicas connect everything, so the serial
        // engine is the only correct execution — and trivially
        // jobs-invariant.
        let mut scheduler = factory();
        return run_system_streamed(source, placement, &mut scheduler, config);
    }
    let n_islands = partition.n_islands();
    let workers = jobs.max(1).min(n_islands);
    let rngs = disk_rngs(config);
    let name = factory().name().to_string();

    if workers == 1 {
        // Multi-island but single-threaded: route inline, no splitter.
        let mut engines: Vec<IslandEngine<'_, Box<dyn Scheduler>>> = (0..n_islands)
            .map(|i| {
                IslandEngine::new(
                    placement,
                    config,
                    factory(),
                    partition.island_disks(i),
                    &rngs,
                    false,
                )
            })
            .collect();
        let mut block: Vec<Request> = Vec::with_capacity(INGEST_BLOCK);
        let mut prev: Option<SimTime> = None;
        // Group each block by island before offering: engines are
        // independent, so only the per-island arrival order matters, and
        // feeding each engine its whole share of the block at once keeps
        // that engine's queue and disk state hot instead of ping-ponging
        // between islands on every record.
        let mut by_island: Vec<Vec<Request>> = vec![Vec::with_capacity(INGEST_BLOCK); n_islands];
        loop {
            block.clear();
            let src_err = source.fill_block(&mut block, INGEST_BLOCK);
            let (valid, order_err) = validate_order(&block, &mut prev);
            for req in &block[..valid] {
                by_island[partition.data_island(req.data)].push(*req);
            }
            for (engine, share) in engines.iter_mut().zip(by_island.iter_mut()) {
                engine.offer_batch(share);
                share.clear();
            }
            if let Some(e) = order_err {
                return Err(e);
            }
            if let Some(e) = src_err {
                return Err(e);
            }
            if valid < INGEST_BLOCK {
                break;
            }
        }
        let finished: Vec<FinishedIsland> =
            engines.into_iter().map(IslandEngine::into_finished).collect();
        return Ok(merge_finished(name, config, finished, 0));
    }

    // Contiguous island ranges per worker; the splitter routes arrivals
    // to the owning worker's substream.
    let group_ranges = spindown_sim::pool::shard_ranges(n_islands, workers);
    let mut group_of_island = vec![0usize; n_islands];
    for (g, range) in group_ranges.iter().enumerate() {
        for i in range.clone() {
            group_of_island[i] = g;
        }
    }
    let route_partition = &partition;
    let route_groups = &group_of_island;
    // The reader stages a block of decoded records per virtual source
    // call (one ordering scan per block); the splitter then parks them
    // into per-group record blocks, and workers drain a block per lock
    // transaction.
    let mut staged: Vec<Request> = Vec::with_capacity(INGEST_BLOCK);
    let mut staged_pos = 0usize;
    let mut staged_err: Option<SourceError> = None;
    let mut src_done = false;
    let mut prev: Option<SimTime> = None;
    let splitter: StreamSplitter<'_, Request, SourceError> = StreamSplitter::new(
        Box::new(move || loop {
            if staged_pos < staged.len() {
                let r = staged[staged_pos];
                staged_pos += 1;
                return Some(Ok(r));
            }
            if let Some(e) = staged_err.take() {
                src_done = true;
                return Some(Err(e));
            }
            if src_done {
                return None;
            }
            staged.clear();
            staged_pos = 0;
            let src_err = source.fill_block(&mut staged, INGEST_BLOCK);
            let (valid, order_err) = validate_order(&staged, &mut prev);
            staged.truncate(valid);
            // An ordering regression precedes any later source failure,
            // exactly as per-record pulling would have surfaced it.
            staged_err = order_err.or(src_err);
            if staged.len() < INGEST_BLOCK && staged_err.is_none() {
                src_done = true;
            }
        }),
        Box::new(move |r: &Request| route_groups[route_partition.data_island(r.data)]),
        workers,
        StreamSplitter::<Request, SourceError>::DEFAULT_CAPACITY,
    );

    let first_error: std::sync::Mutex<Option<SourceError>> = std::sync::Mutex::new(None);
    let finished: Vec<FinishedIsland> = std::thread::scope(|scope| {
        let handles: Vec<_> = group_ranges
            .iter()
            .enumerate()
            .map(|(g, range)| {
                let range = range.clone();
                let splitter = &splitter;
                let partition = &partition;
                let rngs = &rngs;
                let first_error = &first_error;
                scope.spawn(move || {
                    let mut engines: Vec<IslandEngine<'_, Box<dyn Scheduler>>> = range
                        .clone()
                        .map(|i| {
                            IslandEngine::new(
                                placement,
                                config,
                                factory(),
                                partition.island_disks(i),
                                rngs,
                                false,
                            )
                        })
                        .collect();
                    let mut block: Vec<Request> = Vec::new();
                    loop {
                        match splitter.pull_block(g, &mut block) {
                            None => break,
                            Some(Err(e)) => {
                                // Mirror the serial abort: abandon partial
                                // work, surface the (latched) error.
                                first_error.lock().expect("error lock").get_or_insert(e);
                                return Vec::new();
                            }
                            Some(Ok(())) => {
                                // Hand contiguous same-island runs to the
                                // engine in one `offer_batch` call; with
                                // one island per group that is the whole
                                // block.
                                let mut i = 0;
                                while i < block.len() {
                                    let island = partition.data_island(block[i].data);
                                    let mut j = i + 1;
                                    while j < block.len()
                                        && partition.data_island(block[j].data) == island
                                    {
                                        j += 1;
                                    }
                                    engines[island - range.start].offer_batch(&block[i..j]);
                                    i = j;
                                }
                            }
                        }
                    }
                    engines
                        .into_iter()
                        .map(IslandEngine::into_finished)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("island worker panicked"))
            .collect()
    });
    if let Some(e) = first_error.into_inner().expect("error lock") {
        return Err(e);
    }
    let high_water = splitter.high_water();
    Ok(merge_finished(name, config, finished, high_water))
}

/// [`run_system_streamed_with_jobs`] over an in-memory sorted slice — the
/// parallel counterpart of [`run_system`].
///
/// # Panics
///
/// Panics if `requests` is not sorted by time or a scheduler returns an
/// off-placement disk.
pub fn run_system_with_jobs(
    requests: &[Request],
    placement: &(dyn LocationProvider + Sync),
    factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
    config: &SystemConfig,
    jobs: usize,
) -> RunMetrics {
    assert!(
        requests.windows(2).all(|w| w[0].at <= w[1].at),
        "requests must be sorted by time"
    );
    let mut source = requests.iter().map(|r| Ok::<Request, SourceError>(*r));
    run_system_streamed_with_jobs(&mut source, placement, factory, config, jobs)
        .expect("in-memory sorted slices cannot fail")
}

/// Deterministic pseudo-LBA of a data item on a disk: a hash of the
/// (data, disk) pair spread over a nominal 300 GB address space. Real
/// placements assign blocks to arbitrary physical locations; a hash
/// reproduces the resulting random seek pattern. Keyed by the **global**
/// disk id, so island engines generate the serial engine's exact seek
/// pattern.
fn lba_of(data: u64, disk: u32) -> u64 {
    let mut h = SplitMix64::new(data ^ ((disk as u64) << 40) ^ 0x10CA);
    h.next_u64() % 300_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use crate::model::{DataId, DiskId};
    use crate::sched::{
        ExplicitPlacement, HeuristicScheduler, RandomScheduler, StaticScheduler, WscScheduler,
    };

    fn small_config(disks: u32, policy: PolicyKind) -> SystemConfig {
        SystemConfig {
            disks,
            policy,
            seed: 1,
            ..SystemConfig::default()
        }
    }

    fn requests(times_s: &[f64], datas: &[u64]) -> Vec<Request> {
        times_s
            .iter()
            .zip(datas)
            .enumerate()
            .map(|(i, (&t, &d))| Request {
                index: i as u32,
                at: SimTime::from_secs_f64(t),
                data: DataId(d),
                size: 512 * 1024,
            })
            .collect()
    }

    fn two_disk_placement() -> ExplicitPlacement {
        ExplicitPlacement::new(
            vec![vec![DiskId(0), DiskId(1)], vec![DiskId(1), DiskId(0)]],
            2,
        )
    }

    #[test]
    fn completes_all_requests_and_measures_responses() {
        let reqs = requests(&[0.0, 1.0, 2.0, 50.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        assert_eq!(m.requests, 4);
        assert!(m.energy_j > 0.0);
        // First request hits a standby disk: response >= spin-up time.
        assert!(m.response.max() >= 10.0);
    }

    #[test]
    fn always_on_has_no_spindowns_and_fast_responses() {
        let reqs = requests(&[0.0, 30.0, 60.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::AlwaysOn),
        );
        assert_eq!(m.spindowns, 0);
        assert_eq!(m.spinups, 0);
        assert!(m.response.max() < 0.1, "max {}", m.response.max());
        // Energy ≈ always-on baseline.
        assert!((m.normalized_energy() - 1.0).abs() < 0.01);
    }

    #[test]
    fn breakeven_policy_saves_energy_on_sparse_load() {
        // One burst, then silence: the 2CPM disks sleep.
        let reqs = requests(&[0.0, 0.5, 1.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.spindowns >= 1);
        assert!(
            m.normalized_energy() < 0.9,
            "normalized {}",
            m.normalized_energy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let reqs = requests(&[0.0, 0.2, 5.0, 40.0, 41.0], &[0, 1, 0, 1, 0]);
        let placement = two_disk_placement();
        let run = || {
            let mut sched = RandomScheduler::new(3);
            run_system(
                &reqs,
                &placement,
                &mut sched,
                &small_config(2, PolicyKind::Breakeven),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.spinups, b.spinups);
        assert_eq!(a.response.mean(), b.response.mean());
    }

    #[test]
    fn batch_scheduler_batches_and_completes() {
        let reqs = requests(&[0.0, 0.01, 0.02, 0.03], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched =
            WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        // All four requests fit one batch: WSC covers them with ONE disk
        // (both data items live on both disks), so only one disk ever
        // spun up.
        let used: Vec<_> = m.per_disk.iter().filter(|d| d.requests > 0).collect();
        assert_eq!(used.len(), 1, "WSC should consolidate onto one disk");
        // Batch queueing delay: responses include up to 0.1 s of waiting.
        assert!(m.response.mean() >= 0.01);
    }

    #[test]
    fn heuristic_consolidates_on_spinning_disk() {
        // After the first request wakes a disk, subsequent requests for
        // data replicated on both disks should pile onto the awake disk.
        let reqs = requests(&[0.0, 12.0, 14.0, 16.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = HeuristicScheduler::new(CostFunction::energy_only());
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        let used: Vec<_> = m
            .per_disk
            .iter()
            .enumerate()
            .filter(|(_, d)| d.requests > 0)
            .collect();
        assert_eq!(used.len(), 1, "all requests should go to one disk");
        assert_eq!(m.spinups, 1);
    }

    #[test]
    fn empty_request_stream() {
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &[],
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.requests, 0);
        assert_eq!(m.response.count(), 0);
    }

    #[test]
    fn adaptive_policy_runs() {
        let reqs = requests(&[0.0, 1.0, 2.0, 100.0, 101.0], &[0, 0, 0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Adaptive),
        );
        assert_eq!(m.response.count(), 5);
    }

    #[test]
    fn quantile_policy_runs() {
        let reqs = requests(&[0.0, 1.0, 2.0, 100.0, 101.0], &[0, 0, 0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Quantile),
        );
        assert_eq!(m.response.count(), 5);
    }

    #[test]
    fn initial_state_matches_build_path_for_every_policy() {
        // The engine's status placeholder and the disks built by
        // `build_disk` must agree on the initial power state for every
        // policy kind — both now go through `initial_state`, and this
        // pins the build path to it.
        let kinds = [
            PolicyKind::AlwaysOn,
            PolicyKind::Breakeven,
            PolicyKind::FixedTimeout(SimDuration::from_secs(5)),
            PolicyKind::Adaptive,
            PolicyKind::Quantile,
        ];
        for kind in kinds {
            let config = small_config(2, kind.clone());
            let rngs = disk_rngs(&config);
            for d in 0..config.disks {
                let disk = build_disk(&config, d, rngs[d as usize].clone());
                assert_eq!(
                    disk.state(),
                    initial_state(&kind),
                    "policy {kind:?} disk {d}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_always_on_normalizes_to_one() {
        // Disk 1 overrides to the paper's 1 W idealized model while disk 0
        // stays barracuda (9.3 W idle). An always-on fleet must normalize
        // to ~1.0; the old homogeneous baseline (2 × 9.3 W) would report
        // (9.3 + 1.0) / (2 × 9.3) ≈ 0.55 — energy "saved" by config alone.
        let reqs = requests(&[0.0, 30.0, 60.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::AlwaysOn);
        config.power_overrides = vec![(1, PowerParams::paper_example())];
        let m = run_system(&reqs, &placement, &mut sched, &config);
        assert!(
            (m.normalized_energy() - 1.0).abs() < 0.01,
            "normalized {}",
            m.normalized_energy()
        );
    }

    #[test]
    fn heterogeneous_fleet_uses_override_params() {
        // With disk 1 on the 1 W model, an always-on run's total energy
        // must reflect the mixed idle powers, not 2× barracuda.
        let reqs = requests(&[0.0], &[0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::AlwaysOn);
        config.power_overrides = vec![(1, PowerParams::paper_example())];
        let m = run_system(&reqs, &placement, &mut sched, &config);
        let horizon_s = m.horizon_s;
        let expected = (9.3 + 1.0) * horizon_s;
        // Active-time corrections are tiny for one request.
        assert!(
            (m.energy_j - expected).abs() / expected < 0.01,
            "energy {} vs mixed-idle expectation {expected}",
            m.energy_j
        );
    }

    #[test]
    fn failed_disk_reroutes_to_surviving_replica() {
        let reqs = requests(&[0.0, 1.0, 2.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::Breakeven);
        // Disk 0 (the static scheduler's pick for data 0) fails at t=0.
        config.failures = vec![DiskFailure {
            disk: 0,
            at: SimTime::ZERO,
        }];
        let m = run_system(&reqs, &placement, &mut sched, &config);
        assert_eq!(m.response.count(), 3);
        assert_eq!(m.per_disk[0].requests, 0, "failed disk must get no I/O");
        assert_eq!(m.per_disk[1].requests, 3);
    }

    #[test]
    fn requests_drop_when_every_replica_failed() {
        let reqs = requests(&[0.0, 20.0], &[0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::Breakeven);
        config.failures = vec![
            DiskFailure {
                disk: 0,
                at: SimTime::from_secs(10),
            },
            DiskFailure {
                disk: 1,
                at: SimTime::from_secs(10),
            },
        ];
        let m = run_system(&reqs, &placement, &mut sched, &config);
        // The t=0 request is serviced; the t=20 one has no live replica.
        assert_eq!(m.requests, 2, "drops still count as arrivals");
        assert_eq!(m.response.count(), 1);
    }

    #[test]
    fn power_timeline_samples_when_enabled() {
        let reqs = requests(&[0.0, 1.0, 60.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::Breakeven);
        config.power_sample = Some(SimDuration::from_secs(5));
        let m = run_system(&reqs, &placement, &mut sched, &config);
        assert!(
            m.power_timeline.len() >= 5,
            "expected several samples, got {}",
            m.power_timeline.len()
        );
        let params = PowerParams::barracuda();
        for &(t, w) in &m.power_timeline {
            assert!(t >= 0.0);
            assert!(
                (0.0..=2.0 * params.active_w).contains(&w),
                "power sample {w} out of range"
            );
        }
        // Samples are time-ordered.
        assert!(m.power_timeline.windows(2).all(|p| p[0].0 <= p[1].0));
        // Early in the run a disk is spinning; the range of sampled power
        // must vary (disks transition between states).
        let max = m.power_timeline.iter().map(|p| p.1).fold(0.0, f64::max);
        let min = m
            .power_timeline
            .iter()
            .map(|p| p.1)
            .fold(f64::MAX, f64::min);
        assert!(max > min, "power should vary over the run");
    }

    #[test]
    fn power_timeline_empty_when_disabled() {
        let reqs = requests(&[0.0], &[0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.power_timeline.is_empty());
    }

    #[test]
    fn state_fractions_cover_horizon() {
        let reqs = requests(&[0.0, 5.0, 90.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "fractions sum {sum}");
        }
    }

    #[test]
    fn hash_oracle_matches_slab_build() {
        let reqs = requests(&[0.0, 0.1, 0.2, 5.0, 20.0, 20.0], &[0, 1, 0, 1, 0, 1]);
        let placement = two_disk_placement();
        let config = small_config(2, PolicyKind::Breakeven);
        let mut slab_sched = HeuristicScheduler::new(CostFunction::default());
        let slab = run_system(&reqs, &placement, &mut slab_sched, &config);
        let mut hash_sched = HeuristicScheduler::new(CostFunction::default());
        let mut source = reqs.iter().map(|r| Ok::<Request, SourceError>(*r));
        let hash =
            run_system_streamed_hash_oracle(&mut source, &placement, &mut hash_sched, &config)
                .expect("in-memory source");
        assert_eq!(slab, hash);
    }

    #[test]
    fn with_jobs_single_island_equals_serial() {
        // Both data items span both disks: one island, so the parallel
        // entry point must take the serial path (operational fields
        // included).
        let reqs = requests(&[0.0, 1.0, 2.0, 50.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let config = small_config(2, PolicyKind::Breakeven);
        let mut sched = StaticScheduler;
        let serial = run_system(&reqs, &placement, &mut sched, &config);
        for jobs in [1, 4] {
            let parallel = run_system_with_jobs(
                &reqs,
                &placement,
                &|| Box::new(StaticScheduler),
                &config,
                jobs,
            );
            assert_eq!(serial, parallel, "jobs {jobs}");
        }
    }

    #[test]
    fn with_jobs_propagates_source_error() {
        // Two singleton islands; the unsorted stream must surface the
        // same error the serial engine reports.
        let placement =
            ExplicitPlacement::new(vec![vec![DiskId(0)], vec![DiskId(1)]], 2);
        let config = small_config(2, PolicyKind::Breakeven);
        let reqs = requests(&[1.0, 0.5], &[0, 1]);
        let run = |jobs| {
            let mut source = reqs.iter().map(|r| Ok::<Request, SourceError>(*r));
            run_system_streamed_with_jobs(
                &mut source,
                &placement,
                &|| Box::new(StaticScheduler),
                &config,
                jobs,
            )
        };
        let serial_err = {
            let mut source = reqs.iter().map(|r| Ok::<Request, SourceError>(*r));
            let mut sched = StaticScheduler;
            run_system_streamed(&mut source, &placement, &mut sched, &config).unwrap_err()
        };
        for jobs in [1, 2] {
            assert_eq!(run(jobs).unwrap_err(), serial_err, "jobs {jobs}");
        }
    }
}
