//! Thread-local allocation counting for the bench harness.
//!
//! [`CountingAlloc`] is a [`GlobalAlloc`] that delegates every operation
//! to the [`System`] allocator and bumps a thread-local counter on each
//! `alloc`, `alloc_zeroed`, and `realloc`. Installed behind the
//! `bench-alloc` feature of the CLI:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: spindown_alloctrack::CountingAlloc =
//!     spindown_alloctrack::CountingAlloc;
//! ```
//!
//! the harness brackets a warm solve with [`reset_thread_allocs`] /
//! [`thread_allocs`] to report the `allocs_per_solve` gauge — the
//! zero-allocation contract of the scratch-reuse paths, measured rather
//! than asserted. The counter is per-thread, so worker-pool allocations
//! do not pollute a measurement taken on the driver thread; that is the
//! right scope for the serial warm-solve gauge this exists for.
//!
//! This is the one crate in the workspace that cannot
//! `forbid(unsafe_code)`: implementing `GlobalAlloc` is inherently
//! `unsafe`. Every method forwards verbatim to [`System`]; the only
//! added behaviour is the counter bump, which cannot allocate (the
//! thread-local is const-initialized and `u64` has no destructor, so no
//! lazy registration runs inside the allocator).

#![deny(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap acquisitions (`alloc` + `alloc_zeroed` + `realloc`)
/// performed by the **current thread** since the last
/// [`reset_thread_allocs`], as counted by an installed [`CountingAlloc`].
/// Always 0 when the counting allocator is not the global allocator.
pub fn thread_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Resets the current thread's allocation counter to zero.
pub fn reset_thread_allocs() {
    ALLOCS.with(|c| c.set(0));
}

/// A [`System`]-delegating global allocator that counts acquisitions
/// per thread. See the crate docs for usage.
pub struct CountingAlloc;

#[inline]
fn bump() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's own test binary, so
    // only the counter plumbing is testable here; end-to-end counting is
    // exercised by the CLI's `bench-alloc` build.
    #[test]
    fn counter_plumbing() {
        reset_thread_allocs();
        assert_eq!(thread_allocs(), 0);
        bump();
        bump();
        assert_eq!(thread_allocs(), 2);
        reset_thread_allocs();
        assert_eq!(thread_allocs(), 0);
    }
}
