//! Analytic evaluator for the offline scheduling model.
//!
//! The paper's offline model (§2.2) assumes the power manager knows future
//! arrivals: disks are spun up *in advance*, so requests never wait for
//! spin-up, and an idle disk stays idle through gaps shorter than the
//! saving window `TB + T_up + T_down` (Lemma 1). That behaviour cannot be
//! produced by the reactive event-driven simulator, so offline assignments
//! (from [`crate::sched::MwisPlanner`]) are evaluated analytically: each
//! disk's exact state timeline is reconstructed from its sorted request
//! times.
//!
//! The module also provides a brute-force optimal scheduler for tiny
//! instances — the oracle used to validate Theorem 1 (the MWIS reduction
//! computes optimal schedules).

use spindown_disk::mechanics::Mechanics;
use spindown_disk::power::PowerParams;
use spindown_disk::state::DiskPowerState;
use spindown_sim::pool;
use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::SimTime;

use crate::metrics::{DiskSummary, RunMetrics};
use crate::model::{Assignment, Request};
use crate::saving::SavingModel;
use crate::sched::LocationProvider;

/// Evaluates an offline `assignment` of `requests` over `disks` disks.
///
/// * `horizon`: measurement horizon; pass `None` to use the paper's
///   convention (last request time + saving window), which makes the toy
///   examples come out exactly (always-on energy 20 in Fig. 2, 72 in
///   Fig. 3).
/// * `mechanics`: when provided, response times are the expected service
///   time of each request and the service time is charged at active
///   power; when `None`, I/O time is fully negligible (the paper's
///   analysis mode) and responses are zero.
///
/// # Panics
///
/// Panics if the assignment length differs from the request count, or a
/// request is assigned to an out-of-range disk.
pub fn evaluate_offline(
    requests: &[Request],
    assignment: &Assignment,
    disks: u32,
    params: &PowerParams,
    horizon: Option<SimTime>,
    mechanics: Option<&Mechanics>,
) -> RunMetrics {
    evaluate_offline_with_jobs(requests, assignment, disks, params, horizon, mechanics, 1)
}

/// Minimum total work — `disks × requests` — below which
/// [`evaluate_offline_with_jobs`] ignores `jobs` and stays serial.
///
/// The per-disk reconstruction is a single cheap pass over each disk's
/// request list, so on small and medium instances the thread spawn plus
/// per-slot histogram allocation and merge of the fan-out costs more
/// than it saves (the committed benchmark history shows the 180-disk ×
/// 100 k-request fixture running ~29 % *slower* parallel than serial).
/// Below this threshold the evaluator takes the serial path, which also
/// reuses one scratch [`LatencyHistogram`] across all disks instead of
/// allocating one per disk.
pub const MIN_PARALLEL_WORK: u64 = 1 << 25;

/// [`evaluate_offline`] with the per-disk timeline reconstruction fanned
/// out across `jobs` worker threads.
///
/// Once the assignment is fixed the disks are independent, so each
/// [`evaluate_disk`] call lands in its own index-addressed slot and the
/// reduction — energy sums, spin counts, and the response-histogram
/// merge — walks the slots in disk order on the serial path and the
/// parallel path alike. The returned [`RunMetrics`] is therefore
/// **bit-identical** for any `jobs` value; `jobs <= 1` never spawns a
/// thread, and instances smaller than [`MIN_PARALLEL_WORK`] are forced
/// serial so they never pay spawn/merge overhead.
///
/// # Panics
///
/// Panics if the assignment length differs from the request count, or a
/// request is assigned to an out-of-range disk.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_offline_with_jobs(
    requests: &[Request],
    assignment: &Assignment,
    disks: u32,
    params: &PowerParams,
    horizon: Option<SimTime>,
    mechanics: Option<&Mechanics>,
    jobs: usize,
) -> RunMetrics {
    let work = disks as u64 * requests.len() as u64;
    let jobs = if work < MIN_PARALLEL_WORK { 1 } else { jobs };
    evaluate_offline_impl(requests, assignment, disks, params, horizon, mechanics, jobs)
}

/// [`evaluate_offline_with_jobs`] without the [`MIN_PARALLEL_WORK`]
/// guard — the fan-out runs for any `jobs > 1`. Kept separate so the
/// serial/parallel bit-identity tests can exercise the parallel
/// reduction on instances far below the production threshold.
#[allow(clippy::too_many_arguments)]
fn evaluate_offline_impl(
    requests: &[Request],
    assignment: &Assignment,
    disks: u32,
    params: &PowerParams,
    horizon: Option<SimTime>,
    mechanics: Option<&Mechanics>,
    jobs: usize,
) -> RunMetrics {
    assert_eq!(
        requests.len(),
        assignment.len(),
        "assignment must cover every request"
    );
    let model = SavingModel::new(params);
    let horizon = horizon.unwrap_or_else(|| {
        requests
            .last()
            .map(|r| r.at + model.window())
            .unwrap_or(SimTime::ZERO)
    });
    let horizon_s = horizon.as_secs_f64();

    // Per-disk sorted request times (requests are stream-sorted already).
    let mut per_disk: Vec<Vec<&Request>> = vec![Vec::new(); disks as usize];
    for (r, req) in requests.iter().enumerate() {
        let d = assignment.disk_of(r);
        assert!(d.0 < disks, "request {r} assigned to out-of-range {d}");
        per_disk[d.index()].push(req);
    }

    let mut response = LatencyHistogram::default();
    let mut per_disk_summary = Vec::with_capacity(disks as usize);
    let mut total_energy = 0.0;
    let mut total_up = 0;
    let mut total_down = 0;

    {
        let mut fold = |s: DiskSummary, hist: &LatencyHistogram| {
            total_energy += s.energy_j;
            total_up += s.spinups;
            total_down += s.spindowns;
            per_disk_summary.push(s);
            response.merge(hist);
        };

        if jobs <= 1 {
            // Serial: one scratch histogram, reset per disk — no per-disk
            // allocation at all.
            let mut scratch = LatencyHistogram::default();
            for list in &per_disk {
                let s =
                    evaluate_disk_into(list, params, &model, horizon_s, mechanics, &mut scratch);
                fold(s, &scratch);
            }
        } else {
            let evaluated = pool::map_indexed(jobs, per_disk.len(), |d| {
                evaluate_disk(&per_disk[d], params, &model, horizon_s, mechanics)
            });
            for (s, hist) in evaluated {
                fold(s, &hist);
            }
        }
    }

    RunMetrics {
        scheduler: "mwis-offline".into(),
        requests: requests.len(),
        horizon_s,
        energy_j: total_energy,
        always_on_j: disks as f64 * params.idle_w * horizon_s,
        spinups: total_up,
        spindowns: total_down,
        response,
        per_disk: per_disk_summary,
        power_timeline: Vec::new(),
        // The analytic evaluator never touches an event queue or splitter.
        peak_events: 0,
        peak_in_flight: 0,
        splitter_high_water: 0,
    }
}

/// Reconstructs one disk's timeline. States over the horizon:
///
/// * unused disk — standby throughout, zero transitions;
/// * used disk — standby until `t_1 − T_up`, spin-up, then per-gap: idle
///   the whole gap if it is inside the saving window, else idle `TB`,
///   spin down, standby, spin up in advance of the next request; after the
///   last request idle `TB`, spin down, standby to the horizon.
fn evaluate_disk(
    list: &[&Request],
    params: &PowerParams,
    model: &SavingModel,
    horizon_s: f64,
    mechanics: Option<&Mechanics>,
) -> (DiskSummary, LatencyHistogram) {
    let mut response = LatencyHistogram::default();
    let summary = evaluate_disk_into(list, params, model, horizon_s, mechanics, &mut response);
    (summary, response)
}

/// [`evaluate_disk`] writing into a caller-owned response histogram
/// (reset on entry), so the serial path can reuse one scratch histogram
/// across every disk.
fn evaluate_disk_into(
    list: &[&Request],
    params: &PowerParams,
    model: &SavingModel,
    horizon_s: f64,
    mechanics: Option<&Mechanics>,
    response: &mut LatencyHistogram,
) -> DiskSummary {
    response.reset();
    let mut idle_s = 0.0;
    let mut active_s = 0.0;
    let mut spinups: u64 = 0;
    let mut spindowns: u64 = 0;

    if let Some(first) = list.first() {
        spinups = 1;
        let _ = first;
        for w in list.windows(2) {
            let gap = w[1].at.saturating_since(w[0].at).as_secs_f64();
            if gap < model.window_s {
                idle_s += gap;
            } else {
                idle_s += model.breakeven_s;
                spindowns += 1;
                spinups += 1;
            }
        }
        // Tail after the last request.
        let last = list.last().expect("non-empty");
        let tail = (horizon_s - last.at.as_secs_f64()).max(0.0);
        if tail >= model.breakeven_s {
            idle_s += model.breakeven_s;
            spindowns += 1;
        } else {
            idle_s += tail;
        }
    }

    // Service time: charged at active power, carved out of idle time.
    if let Some(m) = mechanics {
        for req in list {
            let s = m.expected_service_time(req.size).as_secs_f64();
            response.record_secs(s);
            active_s += s;
        }
        let carved = active_s.min(idle_s);
        idle_s -= carved;
        active_s = carved;
    } else {
        for _ in list {
            response.record_secs(0.0);
        }
    }

    let up_s = spinups as f64 * params.spinup_s;
    let down_s = spindowns as f64 * params.spindown_s;
    let standby_s = (horizon_s - idle_s - active_s - up_s - down_s).max(0.0);

    let energy_j = idle_s * params.idle_w
        + active_s * params.active_w
        + standby_s * params.standby_w
        + spinups as f64 * params.spinup_j
        + spindowns as f64 * params.spindown_j;

    let mut state_fractions = [0.0; DiskPowerState::COUNT];
    if horizon_s > 0.0 {
        state_fractions[DiskPowerState::Active.index()] = active_s / horizon_s;
        state_fractions[DiskPowerState::Idle.index()] = idle_s / horizon_s;
        state_fractions[DiskPowerState::Standby.index()] = standby_s / horizon_s;
        state_fractions[DiskPowerState::SpinningUp.index()] = up_s / horizon_s;
        state_fractions[DiskPowerState::SpinningDown.index()] = down_s / horizon_s;
    }

    DiskSummary {
        energy_j,
        state_fractions,
        spinups,
        spindowns,
        requests: list.len() as u64,
    }
}

/// Exhaustively finds a minimum-energy offline schedule by trying every
/// combination of replica choices. Exponential — guarded by
/// `max_combinations`; returns `None` when the instance is too large.
///
/// This is the Theorem 1 test oracle: on small instances the exact MWIS
/// planner must match its energy.
pub fn brute_force_optimal(
    requests: &[Request],
    placement: &dyn LocationProvider,
    params: &PowerParams,
    max_combinations: u64,
) -> Option<(Assignment, f64)> {
    let combos: u64 = requests
        .iter()
        .try_fold(1u64, |acc, r| {
            acc.checked_mul(placement.locations(r.data).len() as u64)
        })
        .filter(|&c| c <= max_combinations)?;

    let mut best: Option<(Assignment, f64)> = None;
    let mut assignment = Assignment::with_len(requests.len());
    for combo in 0..combos {
        let mut c = combo;
        for (r, req) in requests.iter().enumerate() {
            let locs = placement.locations(req.data);
            assignment.disks[r] = locs[(c % locs.len() as u64) as usize];
            c /= locs.len() as u64;
        }
        let m = evaluate_offline(requests, &assignment, placement.disks(), params, None, None);
        if best.as_ref().map(|(_, e)| m.energy_j < *e).unwrap_or(true) {
            best = Some((assignment.clone(), m.energy_j));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataId, DiskId};
    use crate::sched::ExplicitPlacement;

    fn toy_requests(times: &[u64]) -> Vec<Request> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| Request {
                index: i as u32,
                at: SimTime::from_secs(t),
                data: DataId(i as u64),
                size: 4096,
            })
            .collect()
    }

    fn paper_placement() -> ExplicitPlacement {
        ExplicitPlacement::new(
            vec![
                vec![DiskId(0)],
                vec![DiskId(0), DiskId(1)],
                vec![DiskId(0), DiskId(1), DiskId(3)],
                vec![DiskId(2), DiskId(3)],
                vec![DiskId(0), DiskId(3)],
                vec![DiskId(2), DiskId(3)],
            ],
            4,
        )
    }

    /// Fig. 3(a): schedule B in the offline model costs 23.
    #[test]
    fn fig3a_schedule_b_costs_23() {
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let assignment = Assignment {
            disks: vec![
                DiskId(0),
                DiskId(0),
                DiskId(0),
                DiskId(2),
                DiskId(0),
                DiskId(2),
            ],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            4,
            &PowerParams::paper_example(),
            None,
            None,
        );
        assert!((m.energy_j - 23.0).abs() < 1e-9, "energy {}", m.energy_j);
        // Horizon convention: last request (13) + window (5) = 18;
        // always-on = 4 disks × 18 s × 1 W = 72.
        assert!((m.always_on_j - 72.0).abs() < 1e-9);
    }

    /// Fig. 3(b): schedule C is optimal with cost 19.
    /// (The paper's §2.3.2 text computes 19 — d1 idle 0–8, d3 idle 5–10,
    /// d4 idle 12–18 — while the figure caption says 21; the text's
    /// arithmetic is the consistent one and is what we assert.)
    #[test]
    fn fig3b_schedule_c_costs_19() {
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let assignment = Assignment {
            disks: vec![
                DiskId(0),
                DiskId(0),
                DiskId(0),
                DiskId(2),
                DiskId(3),
                DiskId(3),
            ],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            4,
            &PowerParams::paper_example(),
            None,
            None,
        );
        assert!((m.energy_j - 19.0).abs() < 1e-9, "energy {}", m.energy_j);
    }

    /// Fig. 2(b): the batch example — all requests at t=0, schedule B uses
    /// two disks at 5 energy each while always-on burns 20.
    #[test]
    fn fig2b_batch_schedule_b_costs_10() {
        let reqs = toy_requests(&[0, 0, 0, 0, 0, 0]);
        let assignment = Assignment {
            disks: vec![
                DiskId(0),
                DiskId(0),
                DiskId(0),
                DiskId(2),
                DiskId(0),
                DiskId(2),
            ],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            4,
            &PowerParams::paper_example(),
            None,
            None,
        );
        assert!((m.energy_j - 10.0).abs() < 1e-9, "energy {}", m.energy_j);
        assert!((m.always_on_j - 20.0).abs() < 1e-9);
        assert_eq!(m.spinups, 2);
        assert_eq!(m.spindowns, 2);
    }

    /// Fig. 2(a): schedule A uses three disks — energy 15.
    #[test]
    fn fig2a_batch_schedule_a_costs_15() {
        let reqs = toy_requests(&[0, 0, 0, 0, 0, 0]);
        let assignment = Assignment {
            disks: vec![
                DiskId(0),
                DiskId(1),
                DiskId(1),
                DiskId(2),
                DiskId(0),
                DiskId(2),
            ],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            4,
            &PowerParams::paper_example(),
            None,
            None,
        );
        assert!((m.energy_j - 15.0).abs() < 1e-9, "energy {}", m.energy_j);
    }

    #[test]
    fn brute_force_finds_the_fig3_optimum() {
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let placement = paper_placement();
        let (best, energy) =
            brute_force_optimal(&reqs, &placement, &PowerParams::paper_example(), 100_000)
                .expect("small instance");
        assert!((energy - 19.0).abs() < 1e-9, "optimal energy {energy}");
        // The optimum pins r1..r3 to d1 (there are multiple optima for the
        // rest; energy is what matters).
        assert_eq!(best.disk_of(0), DiskId(0));
    }

    #[test]
    fn brute_force_respects_combination_limit() {
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let placement = paper_placement();
        assert!(brute_force_optimal(&reqs, &placement, &PowerParams::paper_example(), 3).is_none());
    }

    #[test]
    fn unused_disks_stay_standby() {
        let reqs = toy_requests(&[0]);
        let assignment = Assignment {
            disks: vec![DiskId(0)],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            3,
            &PowerParams::paper_example(),
            Some(SimTime::from_secs(100)),
            None,
        );
        // Disks 1 and 2 are 100% standby.
        for d in [1, 2] {
            assert!((m.per_disk[d].standby_fraction() - 1.0).abs() < 1e-9);
            assert_eq!(m.per_disk[d].spinups, 0);
        }
        // Disk 0: 5 s idle (TB), rest standby.
        let f = m.per_disk[0].state_fractions;
        assert!((f[DiskPowerState::Idle.index()] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one_with_real_params() {
        let reqs = toy_requests(&[0, 5, 100, 300]);
        let assignment = Assignment {
            disks: vec![DiskId(0); 4],
        };
        let m = evaluate_offline(
            &reqs,
            &assignment,
            2,
            &PowerParams::barracuda(),
            Some(SimTime::from_secs(500)),
            None,
        );
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "fractions sum {sum}");
        }
        assert!(m.energy_j > 0.0);
        assert!(m.energy_j < m.always_on_j);
    }

    #[test]
    fn mechanics_add_service_time_and_responses() {
        let reqs = toy_requests(&[0, 1]);
        let assignment = Assignment {
            disks: vec![DiskId(0), DiskId(0)],
        };
        let mech = Mechanics::new(
            spindown_disk::mechanics::DiskGeometry::cheetah_15k5(),
            spindown_sim::rng::SimRng::seed_from_u64(1),
        );
        let m = evaluate_offline(
            &reqs,
            &assignment,
            1,
            &PowerParams::barracuda(),
            None,
            Some(&mech),
        );
        assert_eq!(m.response.count(), 2);
        assert!(m.response.mean() > 0.0 && m.response.mean() < 0.05);
        assert!(m.per_disk[0].state_fractions[DiskPowerState::Active.index()] > 0.0);
    }

    #[test]
    fn parallel_offline_eval_is_bit_identical() {
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let assignment = Assignment {
            disks: vec![
                DiskId(0),
                DiskId(0),
                DiskId(1),
                DiskId(2),
                DiskId(3),
                DiskId(2),
            ],
        };
        let mech = Mechanics::new(
            spindown_disk::mechanics::DiskGeometry::cheetah_15k5(),
            spindown_sim::rng::SimRng::seed_from_u64(7),
        );
        for mechanics in [None, Some(&mech)] {
            let serial = evaluate_offline_impl(
                &reqs,
                &assignment,
                4,
                &PowerParams::barracuda(),
                None,
                mechanics,
                1,
            );
            for jobs in [2usize, 3, 8] {
                // The raw fan-out (below the production threshold).
                let par = evaluate_offline_impl(
                    &reqs,
                    &assignment,
                    4,
                    &PowerParams::barracuda(),
                    None,
                    mechanics,
                    jobs,
                );
                assert_eq!(par, serial, "jobs {jobs}");
                // The public entry forces this tiny instance serial; the
                // result must be indistinguishable either way.
                let guarded = evaluate_offline_with_jobs(
                    &reqs,
                    &assignment,
                    4,
                    &PowerParams::barracuda(),
                    None,
                    mechanics,
                    jobs,
                );
                assert_eq!(guarded, serial, "guarded jobs {jobs}");
            }
        }
    }

    /// The scratch-histogram serial path must leave no residue between
    /// disks: a disk with zero requests after a loaded disk reports an
    /// empty response histogram.
    #[test]
    fn serial_scratch_histogram_resets_between_disks() {
        let reqs = toy_requests(&[0, 1, 2]);
        let assignment = Assignment {
            disks: vec![DiskId(0); 3],
        };
        let mech = Mechanics::new(
            spindown_disk::mechanics::DiskGeometry::cheetah_15k5(),
            spindown_sim::rng::SimRng::seed_from_u64(3),
        );
        let m = evaluate_offline(
            &reqs,
            &assignment,
            2,
            &PowerParams::barracuda(),
            None,
            Some(&mech),
        );
        assert_eq!(m.per_disk[0].requests, 3);
        assert_eq!(m.per_disk[1].requests, 0);
        assert_eq!(m.response.count(), 3);
    }

    #[test]
    fn empty_run() {
        let m = evaluate_offline(
            &[],
            &Assignment::default(),
            2,
            &PowerParams::barracuda(),
            None,
            None,
        );
        assert_eq!(m.energy_j, 0.0);
        assert_eq!(m.requests, 0);
        assert_eq!(m.horizon_s, 0.0);
    }

    /// Theorem 1 sanity on the paper instance: exact-MWIS planning yields
    /// the brute-force optimal energy.
    #[test]
    fn exact_mwis_matches_brute_force_on_paper_instance() {
        use crate::sched::{MwisPlanner, MwisSolver};
        let reqs = toy_requests(&[0, 1, 3, 5, 12, 13]);
        let placement = paper_placement();
        let params = PowerParams::paper_example();
        let planner = MwisPlanner {
            params: params.clone(),
            solver: MwisSolver::exact_default(),
            max_successors: 16,
        };
        let (assignment, _) = planner.plan(&reqs, &placement);
        let planned = evaluate_offline(&reqs, &assignment, 4, &params, None, None);
        let (_, optimal) = brute_force_optimal(&reqs, &placement, &params, 100_000).expect("small");
        assert!(
            (planned.energy_j - optimal).abs() < 1e-9,
            "planner {} vs optimal {}",
            planned.energy_j,
            optimal
        );
    }
}
