//! Write off-loading (Narayanan et al. \[17\], assumed by the paper §2.1).
//!
//! The scheduler only handles **reads**; the paper assumes "write requests
//! can be assigned to one or more idle disks in the system using techniques
//! such as write off-loading, so that they do not need to be handled by the
//! scheduler". This module supplies that mechanism so traces containing
//! writes still run end to end:
//!
//! * [`split_trace`] separates a mixed trace into the scheduler's read
//!   stream and the off-loader's write stream;
//! * [`WriteOffloader`] assigns each write to a currently-spinning disk
//!   (any disk may absorb off-loaded writes — that is the whole point of
//!   the technique), falling back to the write's home location when
//!   nothing is spinning.
//!
//! Off-loaded writes are reconciled with their home location lazily in the
//! real system; energy-wise what matters here is that a write never wakes
//! a sleeping disk.

use spindown_trace::record::{OpKind, Trace};

use crate::cost::DiskStatus;
use crate::model::{DataId, DiskId};
use crate::sched::LocationProvider;

/// Splits a mixed trace into (reads, writes), preserving order within
/// each stream.
pub fn split_trace(trace: &Trace) -> (Trace, Trace) {
    let reads = trace.reads_only();
    let writes = Trace::from_records(
        trace
            .records()
            .iter()
            .copied()
            .filter(|r| r.op == OpKind::Write)
            .collect(),
    );
    (reads, writes)
}

/// Chooses destinations for off-loaded writes.
///
/// Stateless: each decision looks at the system's current disk statuses.
/// Round-robin among the spinning disks spreads the (sequential,
/// log-structured) write load without waking anything.
#[derive(Debug, Clone, Default)]
pub struct WriteOffloader {
    cursor: usize,
}

impl WriteOffloader {
    /// Creates an off-loader.
    pub fn new() -> Self {
        WriteOffloader::default()
    }

    /// Picks the disk to absorb a write of `data`.
    ///
    /// Preference order:
    /// 1. a spinning (active/idle/spinning-up) *home* location of the
    ///    data — no reconciliation needed;
    /// 2. any spinning disk, round-robin — the off-load case;
    /// 3. the original home location — nothing is spinning, someone must
    ///    wake up.
    pub fn place(
        &mut self,
        data: DataId,
        placement: &dyn LocationProvider,
        statuses: &[DiskStatus],
    ) -> WritePlacement {
        let spinning = |d: DiskId| {
            let s = &statuses[d.index()];
            s.state.is_ready() || s.state == spindown_disk::state::DiskPowerState::SpinningUp
        };
        // 1. Spinning home location.
        if let Some(&d) = placement.locations(data).iter().find(|&&d| spinning(d)) {
            return WritePlacement {
                disk: d,
                offloaded: false,
            };
        }
        // 2. Any spinning disk, round-robin from the cursor.
        let n = statuses.len();
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            if spinning(DiskId(idx as u32)) {
                self.cursor = (idx + 1) % n;
                return WritePlacement {
                    disk: DiskId(idx as u32),
                    offloaded: true,
                };
            }
        }
        // 3. Wake the home disk.
        WritePlacement {
            disk: placement.locations(data)[0],
            offloaded: false,
        }
    }
}

/// Where a write went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePlacement {
    /// Destination disk.
    pub disk: DiskId,
    /// `true` if the write landed away from its home locations (will need
    /// background reconciliation).
    pub offloaded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;
    use spindown_trace::record::TraceRecord;

    fn status(state: DiskPowerState) -> DiskStatus {
        DiskStatus {
            state,
            last_request_at: None,
            load: 0,
        }
    }

    fn placement() -> ExplicitPlacement {
        ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)], vec![DiskId(2)]], 4)
    }

    #[test]
    fn split_preserves_both_streams() {
        let records: Vec<TraceRecord> = (0..10)
            .map(|i| TraceRecord {
                at: SimTime::from_secs(i),
                data: DataId(i),
                size: 4096,
                op: if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
            })
            .collect();
        let trace = Trace::from_records(records);
        let (reads, writes) = split_trace(&trace);
        assert_eq!(reads.len(), 6);
        assert_eq!(writes.len(), 4);
        assert!(reads.records().iter().all(|r| r.op == OpKind::Read));
        assert!(writes.records().iter().all(|r| r.op == OpKind::Write));
    }

    #[test]
    fn prefers_spinning_home_location() {
        let mut off = WriteOffloader::new();
        let statuses = vec![
            status(DiskPowerState::Standby),
            status(DiskPowerState::Idle), // home replica, spinning
            status(DiskPowerState::Idle),
            status(DiskPowerState::Idle),
        ];
        let p = off.place(DataId(0), &placement(), &statuses);
        assert_eq!(p.disk, DiskId(1));
        assert!(!p.offloaded);
    }

    #[test]
    fn offloads_to_spinning_foreign_disk() {
        let mut off = WriteOffloader::new();
        // Home of data 1 is disk 2 (standby); disk 3 is spinning.
        let statuses = vec![
            status(DiskPowerState::Standby),
            status(DiskPowerState::Standby),
            status(DiskPowerState::Standby),
            status(DiskPowerState::Active),
        ];
        let p = off.place(DataId(1), &placement(), &statuses);
        assert_eq!(p.disk, DiskId(3));
        assert!(p.offloaded, "landed away from home");
    }

    #[test]
    fn round_robin_spreads_offloaded_writes() {
        let mut off = WriteOffloader::new();
        let statuses = vec![
            status(DiskPowerState::Idle),
            status(DiskPowerState::Standby),
            status(DiskPowerState::Standby),
            status(DiskPowerState::Idle),
        ];
        // Data 1's home (disk 2) is asleep; spinning disks are 0 and 3.
        let a = off.place(DataId(1), &placement(), &statuses);
        let b = off.place(DataId(1), &placement(), &statuses);
        assert_ne!(a.disk, b.disk, "round robin must alternate");
        assert!(a.offloaded && b.offloaded);
    }

    #[test]
    fn wakes_home_disk_when_nothing_spins() {
        let mut off = WriteOffloader::new();
        let statuses = vec![status(DiskPowerState::Standby); 4];
        let p = off.place(DataId(1), &placement(), &statuses);
        assert_eq!(p.disk, DiskId(2), "falls back to the original home");
        assert!(!p.offloaded);
    }

    #[test]
    fn spinning_up_counts_as_spinning() {
        let mut off = WriteOffloader::new();
        let mut statuses = vec![status(DiskPowerState::Standby); 4];
        statuses[1] = status(DiskPowerState::SpinningUp);
        let p = off.place(DataId(0), &placement(), &statuses);
        assert_eq!(p.disk, DiskId(1));
        assert!(!p.offloaded, "disk 1 is a home location of data 0");
    }
}
