//! Offline-assignment refinement (an extension beyond the paper).
//!
//! The paper solves the offline problem with the GMIN greedy and notes
//! that "more sophisticated set cover and independent set algorithms"
//! would save more energy (§5.1). This module provides the complementary
//! improvement: **hill climbing directly on the assignment** under the
//! exact offline energy model. Each step moves one request to another of
//! its replica locations if that strictly lowers total energy; deltas are
//! computed incrementally from the affected disk segments, so a pass over
//! `n` requests costs `O(n · rf · log m)`.
//!
//! The segment costs here are algebraically identical to
//! [`crate::offline::evaluate_offline`]'s accounting (idle power inside
//! the saving window; breakeven idle + transition energy + standby
//! otherwise), so a reported improvement is exactly the improvement the
//! evaluator will measure.

use std::collections::BTreeSet;

use spindown_disk::power::PowerParams;
use spindown_sim::time::SimTime;

use crate::model::{Assignment, Request};
use crate::saving::SavingModel;
use crate::sched::LocationProvider;

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineStats {
    /// Passes actually executed (stops early at a local optimum).
    pub passes: usize,
    /// Requests moved.
    pub moves: usize,
    /// Total energy change, joules (≤ 0).
    pub energy_delta_j: f64,
}

/// Segment-cost model shared by all delta computations.
struct SegModel {
    window_s: f64,
    tb: f64,
    idle_w: f64,
    standby_w: f64,
    up_j: f64,
    down_j: f64,
    up_s: f64,
    down_s: f64,
    horizon_s: f64,
}

impl SegModel {
    fn new(params: &PowerParams, horizon_s: f64) -> Self {
        let model = SavingModel::new(params);
        SegModel {
            window_s: model.window_s,
            tb: model.breakeven_s,
            idle_w: params.idle_w,
            standby_w: params.standby_w,
            up_j: params.spinup_j,
            down_j: params.spindown_j,
            up_s: params.spinup_s,
            down_s: params.spindown_s,
            horizon_s,
        }
    }

    /// Cost of the stretch between two consecutive boundaries on a disk.
    /// `None` on the left means "start of the run"; `None` on the right
    /// means "end of the run". Both `None` is the empty disk.
    fn seg(&self, left: Option<f64>, right: Option<f64>) -> f64 {
        match (left, right) {
            (None, None) => self.standby_w * self.horizon_s,
            // Head: standby until the advance spin-up before the first
            // request.
            (None, Some(t)) => self.standby_w * (t - self.up_s) + self.up_j,
            // Gap between consecutive requests (Lemma 1).
            (Some(a), Some(b)) => {
                let g = (b - a).max(0.0);
                if g < self.window_s {
                    self.idle_w * g
                } else {
                    self.idle_w * self.tb
                        + self.down_j
                        + self.up_j
                        + self.standby_w * (g - self.tb - self.down_s - self.up_s)
                }
            }
            // Tail after the last request.
            (Some(t), None) => {
                let tail = (self.horizon_s - t).max(0.0);
                if tail >= self.tb {
                    self.idle_w * self.tb
                        + self.down_j
                        + self.standby_w * (tail - self.tb - self.down_s)
                } else {
                    self.idle_w * tail
                }
            }
        }
    }
}

type DiskSet = BTreeSet<(SimTime, u32)>;

fn neighbors(set: &DiskSet, key: (SimTime, u32)) -> (Option<f64>, Option<f64>) {
    let prev = set.range(..key).next_back().map(|(t, _)| t.as_secs_f64());
    let next = set
        .range((std::ops::Bound::Excluded(key), std::ops::Bound::Unbounded))
        .next()
        .map(|(t, _)| t.as_secs_f64());
    (prev, next)
}

/// Energy change of removing `key` from a disk.
fn removal_delta(m: &SegModel, set: &DiskSet, key: (SimTime, u32)) -> f64 {
    debug_assert!(set.contains(&key));
    let t = key.0.as_secs_f64();
    let (prev, next) = neighbors(set, key);
    let before = m.seg(prev, Some(t)) + m.seg(Some(t), next);
    let after = if set.len() == 1 {
        m.seg(None, None)
    } else {
        m.seg(prev, next)
    };
    after - before
}

/// Energy change of inserting `key` into a disk.
fn insertion_delta(m: &SegModel, set: &DiskSet, key: (SimTime, u32)) -> f64 {
    debug_assert!(!set.contains(&key));
    let t = key.0.as_secs_f64();
    let (prev, next) = neighbors(set, key);
    let before = if set.is_empty() {
        m.seg(None, None)
    } else {
        m.seg(prev, next)
    };
    let after = m.seg(prev, Some(t)) + m.seg(Some(t), next);
    after - before
}

/// Hill-climbs `assignment` under the offline energy model: repeatedly
/// moves single requests to cheaper replica locations until a local
/// optimum or `max_passes` is reached. The horizon defaults to the
/// evaluator's convention (last request + saving window).
///
/// # Panics
///
/// Panics if the assignment length differs from the request count.
pub fn refine_assignment(
    requests: &[Request],
    assignment: &mut Assignment,
    placement: &dyn LocationProvider,
    params: &PowerParams,
    horizon: Option<SimTime>,
    max_passes: usize,
) -> RefineStats {
    assert_eq!(
        requests.len(),
        assignment.len(),
        "assignment/request mismatch"
    );
    let model = SavingModel::new(params);
    let horizon_s = horizon
        .unwrap_or_else(|| {
            requests
                .last()
                .map(|r| r.at + model.window())
                .unwrap_or(SimTime::ZERO)
        })
        .as_secs_f64();
    let seg = SegModel::new(params, horizon_s);

    let mut disks: Vec<DiskSet> = vec![BTreeSet::new(); placement.disks() as usize];
    for (r, req) in requests.iter().enumerate() {
        disks[assignment.disk_of(r).index()].insert((req.at, req.index));
    }

    let mut stats = RefineStats {
        passes: 0,
        moves: 0,
        energy_delta_j: 0.0,
    };
    for _ in 0..max_passes {
        stats.passes += 1;
        let mut improved = false;
        for (r, req) in requests.iter().enumerate() {
            let key = (req.at, req.index);
            let from = assignment.disk_of(r);
            // Best strictly-improving destination, or — failing that — an
            // energy-neutral *consolidation* move onto a disk at least as
            // loaded (these walk plateaus toward emptying a disk, whose
            // final drain is a strict gain; requiring `|to| ≥ |from|`
            // makes Σ count² strictly increase, so plateau walks cannot
            // cycle).
            let mut best: Option<(f64, crate::model::DiskId)> = None;
            let mut tie: Option<crate::model::DiskId> = None;
            let rem = removal_delta(&seg, &disks[from.index()], key);
            for &to in placement.locations(req.data) {
                if to == from {
                    continue;
                }
                let delta = rem + insertion_delta(&seg, &disks[to.index()], key);
                if delta < -1e-9 {
                    if best.map(|(d, _)| delta < d).unwrap_or(true) {
                        best = Some((delta, to));
                    }
                } else if delta <= 1e-9
                    && tie.is_none()
                    && disks[to.index()].len() >= disks[from.index()].len()
                {
                    tie = Some(to);
                }
            }
            let chosen = match best {
                Some((delta, to)) => {
                    stats.energy_delta_j += delta;
                    Some(to)
                }
                None => tie,
            };
            if let Some(to) = chosen {
                disks[from.index()].remove(&key);
                disks[to.index()].insert(key);
                assignment.disks[r] = to;
                stats.moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataId, DiskId};
    use crate::offline::evaluate_offline;
    use crate::paper_example;
    use crate::sched::ExplicitPlacement;
    use spindown_sim::rng::SimRng;

    #[test]
    fn schedule_b_is_a_single_move_plateau() {
        // Moving from schedule B (23) to the optimum C (19) requires
        // moving r5 and r6 *together* to d4 — each single move alone is
        // energy-neutral, so 1-move hill climbing correctly stays put.
        // (The full MWIS pipeline never starts from B; its greedy start
        // already reaches 19, see sched::mwis tests.)
        let reqs = paper_example::offline_requests();
        let placement = paper_example::placement();
        let params = paper_example::params();
        let mut a = paper_example::schedule_b();
        let stats = refine_assignment(&reqs, &mut a, &placement, &params, None, 10);
        let after = evaluate_offline(&reqs, &a, 4, &params, None, None).energy_j;
        assert_eq!(after, 23.0, "B is a local optimum for single moves");
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.energy_delta_j, 0.0);
    }

    #[test]
    fn refines_schedule_a_toward_the_batch_optimum() {
        // In the batch instance, schedule A (15) has strictly improving
        // single moves down to the optimum B (10).
        let reqs = paper_example::batch_requests();
        let placement = paper_example::placement();
        let params = paper_example::params();
        let mut a = paper_example::schedule_a();
        let before = evaluate_offline(&reqs, &a, 4, &params, None, None).energy_j;
        let stats = refine_assignment(&reqs, &mut a, &placement, &params, None, 10);
        let after = evaluate_offline(&reqs, &a, 4, &params, None, None).energy_j;
        assert_eq!(before, 15.0);
        assert_eq!(after, 10.0, "single moves reach the batch optimum");
        assert!((stats.energy_delta_j - (after - before)).abs() < 1e-9);
        assert!(stats.moves >= 2);
    }

    #[test]
    fn never_worsens_and_reports_exact_delta() {
        // Random instances: refined energy <= original, and the reported
        // delta matches the evaluator exactly.
        let params = paper_example::params();
        let mut rng = SimRng::seed_from_u64(5);
        for case in 0..30 {
            let n = 2 + (case % 6);
            let disks = 3u32;
            let mut t = 0u64;
            let mut locations = Vec::new();
            let mut requests = Vec::new();
            for i in 0..n {
                t += rng.next_below(8_000);
                let mut locs: Vec<DiskId> =
                    (0..disks).filter(|_| rng.chance(0.6)).map(DiskId).collect();
                if locs.is_empty() {
                    locs.push(DiskId(rng.next_below(disks as u64) as u32));
                }
                locations.push(locs);
                requests.push(Request {
                    index: i as u32,
                    at: SimTime::from_millis(t),
                    data: DataId(i as u64),
                    size: 4096,
                });
            }
            let placement = ExplicitPlacement::new(locations, disks);
            use crate::sched::LocationProvider as _;
            let mut assignment = Assignment::with_len(requests.len());
            for (r, req) in requests.iter().enumerate() {
                assignment.disks[r] = placement.locations(req.data)[0];
            }
            let before =
                evaluate_offline(&requests, &assignment, disks, &params, None, None).energy_j;
            let stats =
                refine_assignment(&requests, &mut assignment, &placement, &params, None, 20);
            let after =
                evaluate_offline(&requests, &assignment, disks, &params, None, None).energy_j;
            assert!(after <= before + 1e-9, "case {case}: {after} > {before}");
            assert!(
                (stats.energy_delta_j - (after - before)).abs() < 1e-6,
                "case {case}: delta {} vs {}",
                stats.energy_delta_j,
                after - before
            );
            // Still a valid schedule.
            for (r, req) in requests.iter().enumerate() {
                assert!(placement
                    .locations(req.data)
                    .contains(&assignment.disk_of(r)));
            }
        }
    }

    #[test]
    fn empty_and_single_location_instances_are_noops() {
        let params = paper_example::params();
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0)]], 1);
        let mut a = Assignment::default();
        let stats = refine_assignment(&[], &mut a, &placement, &params, None, 5);
        assert_eq!(stats.moves, 0);

        let reqs = vec![Request {
            index: 0,
            at: SimTime::from_secs(1),
            data: DataId(0),
            size: 4096,
        }];
        let mut a = Assignment {
            disks: vec![DiskId(0)],
        };
        let stats = refine_assignment(&reqs, &mut a, &placement, &params, None, 5);
        assert_eq!(stats.moves, 0, "single location: nothing to move");
        assert_eq!(stats.passes, 1);
    }
}
