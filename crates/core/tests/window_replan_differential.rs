//! Seeded differential suite for the rolling-horizon incremental
//! re-planner.
//!
//! `WindowedPlanner::advance` maintains the window's conflict graph by
//! delta (tombstoned retirements + appended arrivals over a frozen CSR
//! base, compacted back to canonical order before each solve). Its
//! contract is **bit-identity**: after every advance, the maintained
//! graph must equal `MwisPlanner::build_graph` on the same window —
//! same node triples, same CSR offsets/neighbors/weights — and the
//! returned plan must equal `MwisPlanner::plan` exactly (assignment and
//! the claimed-saving `f64`, no tolerance).
//!
//! The suite slides 100+ windows across seeded traces spanning sparse
//! to dense conflict structure and checks every window against *both*
//! graph backends:
//!
//! * the CSR production path (`build_graph` / `plan`) with exact
//!   `PartialEq` on the graph and the plan, and
//! * the mutable adjacency-list oracle (`build_graph_incremental`),
//!   compared as an edge-set (per-node sorted neighbors, weights,
//!   node table) and — on order-insensitive solvers — driven to the
//!   same selection.
//!
//! Special windows are exercised explicitly: empty deltas (no retire,
//! no arrivals — must skip compaction), full turnover (every request
//! retires while a fresh batch arrives), and compaction boundaries
//! (every dirty advance compacts exactly once; the counter pins the
//! policy).

use spindown_core::experiment::{data_space, requests_from_trace};
use spindown_core::model::Request;
use spindown_core::placement::{PlacementConfig, PlacementMap};
use spindown_core::sched::{MwisPlanner, MwisSolver, WindowedPlanner};
use spindown_disk::power::PowerParams;
use spindown_graph::graph::NodeId;
use spindown_sim::time::{SimDuration, SimTime};
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{CelloLike, TraceGenerator};

/// Same bursty workload shape as the parallel-determinism suite:
/// `rate` relative to `requests`/`data_items` controls how densely
/// requests pack into each disk's saving window.
fn workload(requests: usize, data_items: usize, burst_rate: f64, seed: u64) -> Vec<Request> {
    let trace = CelloLike {
        requests,
        data_items,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate,
        },
        ..CelloLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

struct Instance {
    name: &'static str,
    requests: usize,
    data_items: usize,
    rate: f64,
    disks: u32,
    replication: u32,
    max_successors: usize,
    solver: MwisSolver,
    seed: u64,
    /// Arrivals admitted per window.
    step: usize,
    /// Window size cap in requests (the horizon trails the feed
    /// frontier by this many positions).
    cap: usize,
}

const INSTANCES: [Instance; 3] = [
    Instance {
        name: "sparse-rf1",
        requests: 900,
        data_items: 600,
        rate: 3.0,
        disks: 16,
        replication: 1,
        max_successors: 3,
        solver: MwisSolver::GwMin,
        seed: 11,
        step: 20,
        cap: 160,
    },
    Instance {
        name: "moderate-rf3",
        requests: 1_000,
        data_items: 300,
        rate: 6.0,
        disks: 20,
        replication: 3,
        max_successors: 8,
        solver: MwisSolver::GwMin2,
        seed: 23,
        step: 25,
        cap: 200,
    },
    Instance {
        name: "dense-rf5",
        requests: 600,
        data_items: 100,
        rate: 12.0,
        disks: 12,
        replication: 5,
        max_successors: 16,
        solver: MwisSolver::GwMin,
        seed: 37,
        step: 20,
        cap: 120,
    },
];

impl Instance {
    fn workload(&self) -> (Vec<Request>, PlacementMap) {
        let requests = workload(self.requests, self.data_items, self.rate, self.seed);
        let placement = PlacementMap::build(
            data_space(&requests),
            &PlacementConfig {
                disks: self.disks,
                replication: self.replication,
                zipf_z: 1.0,
            },
            self.seed,
        );
        (requests, placement)
    }

    fn planner(&self) -> MwisPlanner {
        MwisPlanner {
            params: PowerParams::barracuda(),
            solver: self.solver,
            max_successors: self.max_successors,
        }
    }
}

/// Rebases a window slice so `index == position` — the shape both
/// `MwisPlanner::plan` and `WindowedPlanner` windows use.
fn rebase(window: &[Request]) -> Vec<Request> {
    window
        .iter()
        .enumerate()
        .map(|(p, r)| Request {
            index: p as u32,
            ..*r
        })
        .collect()
}

/// Checks one settled window against the from-scratch CSR oracle and
/// (when `check_adj`) the mutable adjacency-list backend. The CSR graph
/// is built once and reused for the plan derivation — the same pipeline
/// `MwisPlanner::plan` runs internally.
#[allow(clippy::too_many_arguments)]
fn check_window(
    inst: &Instance,
    planner: &MwisPlanner,
    placement: &PlacementMap,
    w: &WindowedPlanner,
    window: &[Request],
    got: &(spindown_core::model::Assignment, f64),
    check_adj: bool,
    label: &str,
) {
    let ctx = format!("{} {label}", inst.name);
    assert_eq!(w.window(), window, "{ctx}: window contents");

    // CSR backend: graph and plan, exact equality.
    let oracle = planner.build_graph(window, placement);
    assert_eq!(w.node_table(), &oracle.nodes[..], "{ctx}: node table");
    assert_eq!(w.graph(), &oracle.graph, "{ctx}: CSR graph");
    let sel = planner.solve(&oracle);
    let (want_a, want_s) =
        planner.derive_plan(window, placement, &oracle.graph, &oracle.nodes, &sel);
    assert_eq!(got.0.disks, want_a.disks, "{ctx}: assignment");
    assert_eq!(got.1, want_s, "{ctx}: claimed saving (bitwise)");

    if !check_adj {
        return;
    }
    // Adjacency-list backend: same node table, weights, and edge set
    // (its neighbor lists are insertion-ordered — compare sorted).
    // O(E · d̄) to build, so sampled rather than run on every window.
    let adj = planner.build_graph_incremental(window, placement);
    assert_eq!(w.node_table(), &adj.nodes[..], "{ctx}: adj node table");
    assert_eq!(
        w.graph().edge_count(),
        adj.graph.edge_count(),
        "{ctx}: adj edge count"
    );
    for v in 0..adj.graph.len() as NodeId {
        let mut nbrs = adj.graph.neighbors(v).to_vec();
        nbrs.sort_unstable();
        assert_eq!(w.graph().neighbors(v), &nbrs[..], "{ctx}: adj nbrs of {v}");
        assert_eq!(w.graph().weight(v), adj.graph.weight(v), "{ctx}: weight {v}");
    }
    // GwMin's scores depend only on structure (weight / (degree + 1)),
    // so both backends drive it to the identical selection; GwMin2
    // accumulates neighbor weights in slice order, so cross-backend
    // float identity is out of contract there.
    if matches!(inst.solver, MwisSolver::GwMin) {
        assert_eq!(
            planner.solve(&oracle),
            planner.solve(&adj),
            "{ctx}: cross-backend selection"
        );
    }
}

/// Slides the full schedule over one instance, checking every window.
/// Returns the number of windows driven.
fn drive(inst: &Instance) -> u64 {
    let (reqs, placement) = inst.workload();
    let planner = inst.planner();
    let mut w = WindowedPlanner::new(planner.clone(), inst.disks);
    let mut fed = 0usize;
    let mut dirty_advances = 0u64;
    while fed < reqs.len() {
        let feed_to = (fed + inst.step).min(reqs.len());
        let arrivals = rebase(&reqs[fed..feed_to]);
        fed = feed_to;
        let horizon = reqs[fed.saturating_sub(inst.cap)].at;
        let got = w.advance(&arrivals, horizon, &placement);
        dirty_advances += 1;

        // Oracle window: the fed prefix minus the retired time-prefix.
        let start = reqs.partition_point(|r| r.at < horizon);
        let window = rebase(&reqs[start..fed]);
        check_window(
            inst,
            &planner,
            &placement,
            &w,
            &window,
            &got,
            dirty_advances % 8 == 1,
            &format!("window@{fed}"),
        );

        // Compaction boundary: every dirty advance compacts exactly
        // once (the maintained base is always the canonical CSR).
        assert_eq!(
            w.stats().compactions,
            dirty_advances,
            "{}: compaction per dirty advance",
            inst.name
        );

        // Every 10th window: an empty delta — same horizon, no
        // arrivals. Must skip compaction and reproduce the same plan.
        if w.stats().windows.is_multiple_of(10) {
            let again = w.advance(&[], horizon, &placement);
            assert_eq!(got, again, "{}: empty delta re-plan", inst.name);
            assert_eq!(
                w.stats().compactions,
                dirty_advances,
                "{}: empty delta must not compact",
                inst.name
            );
        }
    }

    // Full turnover: retire the entire surviving window while a
    // shifted copy of the opening chunk arrives.
    let last = reqs.last().unwrap().at;
    let turnover: Vec<Request> = reqs[..inst.cap.min(reqs.len())]
        .iter()
        .map(|r| Request {
            at: last + SimDuration::from_secs(3600) + (r.at - SimTime::from_secs(0)),
            ..*r
        })
        .collect();
    let horizon = last + SimDuration::from_secs(1);
    let got = w.advance(&turnover, horizon, &placement);
    let window = rebase(&turnover);
    check_window(inst, &planner, &placement, &w, &window, &got, true, "turnover");
    assert_eq!(
        w.stats().retired_requests_total + w.stats().window_requests as u64,
        w.stats().arrived_requests_total,
        "{}: every arrival is eventually retired or still windowed",
        inst.name
    );

    w.stats().windows
}

// Per-instance floors sum past the suite's advertised 100-window
// coverage floor (48 + 44 + 33 = 125); each test pins its own count so
// a workload change can't silently shrink coverage.

#[test]
fn sparse_rf1_windows_are_bit_identical() {
    assert!(drive(&INSTANCES[0]) >= 48);
}

#[test]
fn moderate_rf3_windows_are_bit_identical() {
    assert!(drive(&INSTANCES[1]) >= 44);
}

#[test]
fn dense_rf5_windows_are_bit_identical() {
    assert!(drive(&INSTANCES[2]) >= 33);
}
