//! Write off-loading demo (paper §2.1): the scheduler only sees reads
//! because writes are diverted to disks that are already spinning.
//!
//! This example takes a mixed read/write workload, splits it, and counts
//! how many writes would have *woken a sleeping disk* under naive
//! home-location placement versus the off-loader — using a disk-activity
//! timeline reconstructed from the read stream (a disk is spinning at
//! time t if it serviced a read within the preceding breakeven window).
//!
//! ```text
//! cargo run --release --example write_offload
//! ```

use spindown::core::cost::DiskStatus;
use spindown::core::offload::{split_trace, WriteOffloader};
use spindown::prelude::*;
use spindown::trace::synth::arrivals::OnOffProcess;

fn main() {
    // A mixed workload: 30 % writes, bursty arrivals.
    let trace = CelloLike {
        requests: 8_000,
        data_items: 3_000,
        write_fraction: 0.3,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate: 12.0,
        },
        ..CelloLike::default()
    }
    .generate(21);

    let (reads, writes) = split_trace(&trace);
    println!(
        "mixed workload: {} requests = {} reads + {} writes",
        trace.len(),
        reads.len(),
        writes.len()
    );

    // The read side goes through the normal energy-aware pipeline.
    let read_reqs = requests_from_trace(&reads);
    let disks = 16u32;
    let placement = PlacementMap::build(
        read_reqs
            .iter()
            .map(|r| r.data.0 as usize + 1)
            .max()
            .unwrap_or(0),
        &PlacementConfig {
            disks,
            replication: 3,
            zipf_z: 1.0,
        },
        21,
    );
    let params = PowerParams::barracuda();
    let tb = params.breakeven_secs();

    // Reconstruct per-disk activity from the reads under Static routing:
    // disk d is "spinning" at time t if some read hit it in [t - TB, t].
    let mut read_times: Vec<Vec<f64>> = vec![Vec::new(); disks as usize];
    for r in &read_reqs {
        read_times[placement.original(r.data).index()].push(r.at.as_secs_f64());
    }
    let spinning_at = |d: usize, t: f64| -> bool {
        let times = &read_times[d];
        let idx = times.partition_point(|&x| x <= t);
        idx > 0 && t - times[idx - 1] <= tb
    };

    // Writes need a placement mapped over the same data space; writes may
    // touch blocks the reads never did, so build against the full space.
    let full_space = trace.densified();
    let write_recs = full_space
        .records()
        .iter()
        .filter(|r| r.op == spindown::trace::OpKind::Write)
        .collect::<Vec<_>>();
    let full_placement = PlacementMap::build(
        full_space.data_space() as usize,
        &PlacementConfig {
            disks,
            replication: 3,
            zipf_z: 1.0,
        },
        21,
    );

    let mut offloader = WriteOffloader::new();
    let mut naive_wakes = 0usize;
    let mut offload_wakes = 0usize;
    let mut offloaded = 0usize;
    for w in &write_recs {
        let t = w.at.as_secs_f64();
        let statuses: Vec<DiskStatus> = (0..disks as usize)
            .map(|d| DiskStatus {
                state: if spinning_at(d, t) {
                    spindown::disk::DiskPowerState::Idle
                } else {
                    spindown::disk::DiskPowerState::Standby
                },
                last_request_at: None,
                load: 0,
            })
            .collect();
        // Naive: write to its home (original) location.
        let home = full_placement.original(w.data);
        if !spinning_at(home.index(), t) {
            naive_wakes += 1;
        }
        // Off-loaded: to a spinning disk when one exists.
        let p = offloader.place(w.data, &full_placement, &statuses);
        if !spinning_at(p.disk.index(), t) {
            offload_wakes += 1;
        }
        if p.offloaded {
            offloaded += 1;
        }
    }

    println!("\nwrites that would wake a sleeping disk:");
    println!(
        "  naive home placement : {:>5} of {} ({:.1}%)",
        naive_wakes,
        write_recs.len(),
        100.0 * naive_wakes as f64 / write_recs.len() as f64
    );
    println!(
        "  with write off-loading: {:>5} of {} ({:.1}%), {} writes redirected",
        offload_wakes,
        write_recs.len(),
        100.0 * offload_wakes as f64 / write_recs.len() as f64,
        offloaded
    );
    assert!(offload_wakes <= naive_wakes);
    println!(
        "\nEvery avoided wake-up keeps a disk in standby and skips a ~300 J\n\
         spin cycle — this is why the paper can assume the scheduler only\n\
         ever sees reads (§2.1)."
    );
}
