//! # spindown
//!
//! A production-quality Rust reproduction of *"Exploiting Replication for
//! Energy-Aware Scheduling in Disk Storage Systems"* (Jerry Chou, Jinoh
//! Kim, Doron Rotem — ICDCS 2011).
//!
//! Large storage systems keep thousands of disks spinning; a disk in
//! standby draws roughly a tenth of its idle power, but can only be spun
//! down when it sees no requests for longer than the breakeven time. The
//! paper's idea: file systems already replicate every block for fault
//! tolerance, so the *scheduler* can steer each read to whichever replica
//! keeps the fewest disks awake — no data migration, no placement changes.
//!
//! This workspace implements the complete system, from the discrete-event
//! simulator up to the figure-regeneration harness:
//!
//! * [`sim`] *(crate `spindown-sim`)* — deterministic event kernel, PRNG,
//!   distributions, statistics;
//! * [`disk`] *(crate `spindown-disk`)* — disk mechanics, the five-state
//!   power machine, 2CPM power management, energy metering;
//! * [`graph`] *(crate `spindown-graph`)* — maximum-weight independent set
//!   and weighted set cover solvers;
//! * [`trace`] *(crate `spindown-trace`)* — trace parsers (SPC, SRT) and
//!   Cello/Financial1-like synthetic workload generators;
//! * [`core`] *(crate `spindown-core`)* — placement, the Eq. 3/5/6/7 cost
//!   model, the five schedulers, the system simulator, the offline
//!   evaluator and the experiment runner.
//!
//! ## Quick start
//!
//! ```
//! use spindown::prelude::*;
//!
//! // A bursty, Zipf-skewed workload (Cello-like), 16 disks, replication 3.
//! let trace = CelloLike { requests: 800, data_items: 300, ..CelloLike::default() }.generate(1);
//! let requests = requests_from_trace(&trace);
//! let spec = ExperimentSpec {
//!     placement: PlacementConfig { disks: 16, replication: 3, zipf_z: 1.0 },
//!     scheduler: SchedulerKind::Heuristic(CostFunction::default()),
//!     system: SystemConfig { disks: 16, ..SystemConfig::default() },
//!     seed: 7,
//! };
//! let energy_aware = run_experiment(&requests, &spec);
//! let baseline = run_experiment(&requests, &ExperimentSpec {
//!     scheduler: SchedulerKind::Static,
//!     ..spec.clone()
//! });
//! assert!(energy_aware.energy_j > 0.0 && baseline.energy_j > 0.0);
//! ```
//!
//! See the `examples/` directory for runnable scenarios and the
//! `spindown-bench` crate for the per-figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spindown_core as core;
pub use spindown_disk as disk;
pub use spindown_graph as graph;
pub use spindown_sim as sim;
pub use spindown_trace as trace;

/// One-stop imports for the common experiment workflow.
pub mod prelude {
    pub use spindown_core::cost::CostFunction;
    pub use spindown_core::experiment::{
        requests_from_trace, run_always_on_baseline, run_experiment, ExperimentSpec, SchedulerKind,
    };
    pub use spindown_core::metrics::RunMetrics;
    pub use spindown_core::model::{Assignment, DataId, DiskId, Request};
    pub use spindown_core::placement::{PlacementConfig, PlacementMap};
    pub use spindown_core::sched::MwisSolver;
    pub use spindown_core::system::{PolicyKind, SystemConfig};
    pub use spindown_disk::power::PowerParams;
    pub use spindown_sim::time::{SimDuration, SimTime};
    pub use spindown_trace::synth::{CelloLike, FinancialLike, TraceGenerator};
}
