//! Per-request energy accounting for the offline model: the paper's
//! Lemma 1 / Eq. 3.
//!
//! The **energy consumption of a request** `r_i` on disk `d_k` is the
//! energy `d_k` consumes from `t_i` until its next request `r_j` arrives.
//! Under 2CPM with advance spin-up (offline model) there are three cases:
//!
//! * **Case I** — `t_j − t_i ≥ TB + T_up + T_down`: the disk idles a full
//!   breakeven period, spins down and back up: cost `E_up + E_down +
//!   TB·P_I` — the maximum, so the saving is 0.
//! * **Case II/III** — `t_j − t_i < TB + T_up + T_down`: the disk stays
//!   idle until `t_j` (spinning down would make `r_j` late): cost
//!   `(t_j − t_i)·P_I`, saving `E_up + E_down + (TB − (t_j − t_i))·P_I`.
//!
//! The **maximum energy** of any request is `E_max = E_up + E_down +
//! TB·P_I`, and `X(i,j,k) = E_max − cost`.

use spindown_disk::power::PowerParams;
use spindown_sim::time::{SimDuration, SimTime};

/// Pre-extracted constants of Eq. 3, so the scheduler's inner loops don't
/// repeatedly unpack [`PowerParams`].
#[derive(Debug, Clone, Copy)]
pub struct SavingModel {
    /// `E_up + E_down`, joules.
    pub transition_j: f64,
    /// Breakeven time `TB`, seconds.
    pub breakeven_s: f64,
    /// Idle power `P_I`, watts.
    pub idle_w: f64,
    /// The saving window `TB + T_up + T_down`, seconds: a successor
    /// arriving later than this saves nothing.
    pub window_s: f64,
}

impl SavingModel {
    /// Builds the model from power parameters.
    pub fn new(params: &PowerParams) -> Self {
        SavingModel {
            transition_j: params.transition_j(),
            breakeven_s: params.breakeven_secs(),
            idle_w: params.idle_w,
            window_s: params.breakeven_secs() + params.transition_s(),
        }
    }

    /// The saving window as a [`SimDuration`].
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.window_s)
    }

    /// `E_max = E_up + E_down + TB·P_I` — the worst-case energy of one
    /// request (paper §3.1.1).
    pub fn max_request_energy_j(&self) -> f64 {
        self.transition_j + self.breakeven_s * self.idle_w
    }

    /// Eq. 3: the energy saving `X(i,j,k)` when `r_j` succeeds `r_i` on
    /// the same disk, as a function of the gap `t_j − t_i`.
    ///
    /// Returns 0 when the gap is at or beyond the saving window. The value
    /// is non-negative whenever the transition energy dominates idle power
    /// over the transition time (true for every real disk).
    pub fn pair_saving_j(&self, ti: SimTime, tj: SimTime) -> f64 {
        debug_assert!(tj >= ti, "successor must not precede the request");
        let gap = tj.saturating_since(ti).as_secs_f64();
        if gap >= self.window_s {
            return 0.0;
        }
        (self.transition_j + (self.breakeven_s - gap) * self.idle_w).max(0.0)
    }

    /// The offline energy cost of `r_i` given its successor gap — the
    /// complement of [`SavingModel::pair_saving_j`]:
    /// `cost = E_max − X`. A request with no successor costs `E_max`.
    pub fn request_cost_j(&self, gap: Option<SimDuration>) -> f64 {
        match gap {
            Some(g) if g.as_secs_f64() < self.window_s => g.as_secs_f64() * self.idle_w,
            _ => self.max_request_energy_j(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SavingModel {
        // The paper's example model: TB = 5 s, P_I = 1 W, no transition
        // cost or time.
        SavingModel::new(&PowerParams::paper_example())
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn toy_model_constants() {
        let m = toy();
        assert_eq!(m.max_request_energy_j(), 5.0);
        assert_eq!(m.window_s, 5.0);
        assert_eq!(m.transition_j, 0.0);
    }

    #[test]
    fn paper_fig3b_request_savings() {
        // Schedule C in Fig. 3(b): r1,r2,r3 on d1 at t=0,1,3.
        let m = toy();
        // r1's successor r2 at gap 1: saving 5-1=4 (paper: "the energy
        // saving of r1 is 4").
        assert_eq!(m.pair_saving_j(t(0.0), t(1.0)), 4.0);
        // r2's successor r3 at gap 2: saving 3.
        assert_eq!(m.pair_saving_j(t(1.0), t(3.0)), 3.0);
        // r3 has no successor: cost E_max = 5 ("energy consumption of r3
        // is 5"), saving 0.
        assert_eq!(m.request_cost_j(None), 5.0);
        // r5 -> r6 on d4 at 12,13: saving 4.
        assert_eq!(m.pair_saving_j(t(12.0), t(13.0)), 4.0);
    }

    #[test]
    fn saving_is_zero_outside_window() {
        let m = toy();
        assert_eq!(m.pair_saving_j(t(0.0), t(5.0)), 0.0);
        assert_eq!(m.pair_saving_j(t(0.0), t(100.0)), 0.0);
    }

    #[test]
    fn saving_decreases_with_gap() {
        let m = SavingModel::new(&PowerParams::barracuda());
        let mut prev = f64::INFINITY;
        for g in 0..30 {
            let x = m.pair_saving_j(t(0.0), t(g as f64));
            assert!(x <= prev);
            assert!(x >= 0.0);
            prev = x;
        }
        // Zero gap achieves the maximum saving E_max.
        assert!((m.pair_saving_j(t(0.0), t(0.0)) - m.max_request_energy_j()).abs() < 1e-9);
    }

    #[test]
    fn barracuda_window_includes_transitions() {
        let p = PowerParams::barracuda();
        let m = SavingModel::new(&p);
        assert!((m.window_s - (p.breakeven_secs() + 11.5)).abs() < 1e-12);
        // A successor arriving after TB but inside the window still saves
        // the transition energy (Lemma 1 case II).
        let gap = p.breakeven_secs() + 5.0;
        let x = m.pair_saving_j(t(0.0), t(gap));
        assert!(x > 0.0, "case II saving {x}");
        assert!(x < p.transition_j());
    }

    #[test]
    fn request_cost_complements_saving() {
        let m = SavingModel::new(&PowerParams::barracuda());
        for g in [0.0, 1.0, 10.0, 20.0, 30.0, 100.0] {
            let cost = m.request_cost_j(Some(SimDuration::from_secs_f64(g)));
            let saving = m.pair_saving_j(t(0.0), t(g));
            assert!(
                (cost + saving - m.max_request_energy_j()).abs() < 1e-9,
                "gap {g}: cost {cost} + saving {saving} != E_max"
            );
        }
    }
}
